package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel every chaos-injected error wraps, so
// tests and gates can tell injected faults from real ones.
var ErrInjected = errors.New("resilience: injected fault")

// Fault describes the faults injected into one pipeline stage.
type Fault struct {
	// Latency is added before the stage runs (context-aware: the sleep
	// aborts with ctx.Err() when the deadline fires first, which is
	// exactly how a slow stage turns into a deadline miss).
	Latency time.Duration
	// LatencyP is the probability of injecting Latency; 0 with a
	// non-zero Latency means always.
	LatencyP float64
	// ErrorP is the probability of an injected error.
	ErrorP float64
	// PanicP is the probability of an injected panic.
	PanicP float64

	// Transport faults, honored only for the reserved stage name
	// "http" by the serve.WithHTTPChaos middleware (pipeline-stage
	// Inject ignores them):

	// SlowWrite pauses before each response-body write.
	SlowWrite time.Duration
	// SlowWriteP is the probability of SlowWrite per request; 0 with a
	// non-zero SlowWrite means always.
	SlowWriteP float64
	// StallRead pauses before each request-body read.
	StallRead time.Duration
	// StallReadP is the probability of StallRead per request.
	StallReadP float64
	// PartialP is the probability the response body is silently
	// truncated partway (the client sees a malformed payload).
	PartialP float64
	// ResetP is the probability the connection is aborted mid-response
	// (the client sees an unexpected EOF / connection reset).
	ResetP float64
	// GarbageP is the probability garbage bytes are appended after the
	// response body (oversized/corrupt payload).
	GarbageP float64
}

// ChaosCounts tallies the faults injected into one stage.
type ChaosCounts struct {
	Latencies, Errors, Panics int
	// Transport-fault tallies (stage "http" only).
	SlowWrites, StallReads, Partials, Resets, Garbage int
}

// Chaos is a deterministic, seedable fault injector. Pipeline stages
// call Inject at their boundary; whether a fault fires is drawn from a
// single seeded source, so a fixed seed yields a reproducible fault
// sequence for sequential runs (concurrent runs draw in scheduling
// order, so only the distribution is reproducible). The zero of the
// type is not usable; build with NewChaos or ParseChaos. All methods
// are safe for concurrent use; a nil *Chaos injects nothing.
type Chaos struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	counts map[string]*ChaosCounts
}

// NewChaos builds an injector with no faults configured.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:    rand.New(rand.NewSource(seed)),
		faults: make(map[string]Fault),
		counts: make(map[string]*ChaosCounts),
	}
}

// Set configures the fault for one stage ("*" applies to every stage
// without its own entry). Returns c for chaining.
func (c *Chaos) Set(stage string, f Fault) *Chaos {
	if f.Latency > 0 && f.LatencyP <= 0 {
		f.LatencyP = 1
	}
	if f.SlowWrite > 0 && f.SlowWriteP <= 0 {
		f.SlowWriteP = 1
	}
	if f.StallRead > 0 && f.StallReadP <= 0 {
		f.StallReadP = 1
	}
	c.mu.Lock()
	c.faults[stage] = f
	c.mu.Unlock()
	return c
}

// Injected snapshots per-stage injection counts.
func (c *Chaos) Injected() map[string]ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ChaosCounts, len(c.counts))
	for k, v := range c.counts {
		out[k] = *v
	}
	return out
}

// Stages lists the configured stages in sorted order.
func (c *Chaos) Stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.faults))
	for k := range c.faults {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseChaos builds an injector from a flag-friendly spec:
//
//	stage:fault[,fault][;stage:fault...]
//
// where each fault is one of
//
//	lat=DURATION[@PROB]        added latency (e.g. lat=300ms@0.5)
//	err=PROB                   injected error rate
//	panic=PROB                 injected panic rate
//	slowwrite=DURATION[@PROB]  pause before each response write
//	stallread=DURATION[@PROB]  pause before each request-body read
//	partial=PROB               truncate the response body
//	reset=PROB                 abort the connection mid-response
//	garbage=PROB               append garbage after the body
//
// and stage is a pipeline stage name (speech, nlq, solver,
// progressive, viz), "*" for all pipeline stages, or the reserved
// stage "http" whose transport faults the serve HTTP middleware
// applies below the handler. Example:
//
//	solver:lat=300ms@0.8,err=0.05;http:reset=0.02,partial=0.05
func ParseChaos(spec string, seed int64) (*Chaos, error) {
	c := NewChaos(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stage, faults, ok := strings.Cut(part, ":")
		if !ok || strings.TrimSpace(stage) == "" {
			return nil, fmt.Errorf("resilience: chaos spec %q: want stage:fault[,fault]", part)
		}
		var f Fault
		for _, fs := range strings.Split(faults, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(fs), "=")
			if !ok {
				return nil, fmt.Errorf("resilience: chaos fault %q: want key=value", fs)
			}
			switch key {
			case "lat":
				durStr, probStr, hasProb := strings.Cut(val, "@")
				d, err := time.ParseDuration(durStr)
				if err != nil {
					return nil, fmt.Errorf("resilience: chaos latency %q: %w", val, err)
				}
				f.Latency = d
				f.LatencyP = 1
				if hasProb {
					p, err := parseProb(probStr)
					if err != nil {
						return nil, err
					}
					f.LatencyP = p
				}
			case "err":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.ErrorP = p
			case "panic":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.PanicP = p
			case "slowwrite", "stallread":
				durStr, probStr, hasProb := strings.Cut(val, "@")
				d, err := time.ParseDuration(durStr)
				if err != nil {
					return nil, fmt.Errorf("resilience: chaos %s %q: %w", key, val, err)
				}
				p := 1.0
				if hasProb {
					if p, err = parseProb(probStr); err != nil {
						return nil, err
					}
				}
				if key == "slowwrite" {
					f.SlowWrite, f.SlowWriteP = d, p
				} else {
					f.StallRead, f.StallReadP = d, p
				}
			case "partial":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.PartialP = p
			case "reset":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.ResetP = p
			case "garbage":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.GarbageP = p
			default:
				return nil, fmt.Errorf("resilience: unknown chaos fault %q (want lat|err|panic|slowwrite|stallread|partial|reset|garbage)", key)
			}
		}
		c.Set(strings.TrimSpace(stage), f)
	}
	return c, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	var p float64
	if _, err := fmt.Sscanf(s, "%g", &p); err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("resilience: chaos probability %q: want a number in [0,1]", s)
	}
	return p, nil
}

// chaosKey is the private context key for the attached injector.
type chaosKey struct{}

// WithChaos attaches c to the context so instrumented stages inject.
func WithChaos(ctx context.Context, c *Chaos) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, chaosKey{}, c)
}

// ChaosFrom returns the attached injector, or nil.
func ChaosFrom(ctx context.Context) *Chaos {
	c, _ := ctx.Value(chaosKey{}).(*Chaos)
	return c
}

// Inject runs the configured faults for stage at an instrumented
// boundary: it may sleep (returning ctx.Err() if the deadline fires
// mid-sleep), return an error wrapping ErrInjected, or panic. Without
// an injector in ctx (the production path) it is a single pointer
// check. Call it right after the stage's span opens so injected
// deadline misses are blamed on the right stage.
func Inject(ctx context.Context, stage string) error {
	c := ChaosFrom(ctx)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	f, ok := c.faults[stage]
	if !ok {
		f, ok = c.faults["*"]
	}
	if !ok {
		c.mu.Unlock()
		return nil
	}
	// Draw all three decisions in a fixed order so the consumed
	// randomness per call is constant regardless of which faults fire.
	sleep := f.LatencyP > 0 && c.rng.Float64() < f.LatencyP
	fail := f.ErrorP > 0 && c.rng.Float64() < f.ErrorP
	explode := f.PanicP > 0 && c.rng.Float64() < f.PanicP
	cnt := c.counts[stage]
	if cnt == nil {
		cnt = &ChaosCounts{}
		c.counts[stage] = cnt
	}
	if sleep {
		cnt.Latencies++
	}
	if explode {
		cnt.Panics++
	} else if fail {
		cnt.Errors++
	}
	c.mu.Unlock()

	if sleep {
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if explode {
		panic(fmt.Sprintf("chaos: injected panic in stage %q", stage))
	}
	if fail {
		return fmt.Errorf("chaos: stage %q: %w", stage, ErrInjected)
	}
	return nil
}

// HTTPStage is the reserved stage name whose faults the HTTP chaos
// middleware applies below the handler. It never matches "*": wildcard
// pipeline faults should not silently corrupt the transport.
const HTTPStage = "http"

// HTTPPlan is the set of transport-fault decisions drawn for one HTTP
// request. Zero value = no faults.
type HTTPPlan struct {
	// Latency delays the handler before it runs.
	Latency time.Duration
	// SlowWrite pauses before each response-body write.
	SlowWrite time.Duration
	// StallRead pauses before each request-body read.
	StallRead time.Duration
	// Partial silently truncates the response body.
	Partial bool
	// Reset aborts the connection mid-response.
	Reset bool
	// Garbage appends garbage bytes after the body.
	Garbage bool
}

// Any reports whether the plan injects anything.
func (p HTTPPlan) Any() bool {
	return p.Latency > 0 || p.SlowWrite > 0 || p.StallRead > 0 ||
		p.Partial || p.Reset || p.Garbage
}

// HasHTTP reports whether transport faults are configured, so the
// middleware can stay a no-op otherwise.
func (c *Chaos) HasHTTP() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.faults[HTTPStage]
	return ok
}

// PlanHTTP draws the transport-fault decisions for one request from
// the seeded source. Like Inject, it consumes a fixed number of draws
// per call so a fixed seed yields a reproducible fault sequence. The
// decisions are returned rather than applied: the middleware owns the
// mechanics, the injector owns the randomness and the counts.
func (c *Chaos) PlanHTTP() HTTPPlan {
	if c == nil {
		return HTTPPlan{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.faults[HTTPStage]
	if !ok {
		return HTTPPlan{}
	}
	var p HTTPPlan
	// Fixed draw order: lat, slowwrite, stallread, partial, reset,
	// garbage.
	if f.LatencyP > 0 && c.rng.Float64() < f.LatencyP {
		p.Latency = f.Latency
	}
	if f.SlowWriteP > 0 && c.rng.Float64() < f.SlowWriteP {
		p.SlowWrite = f.SlowWrite
	}
	if f.StallReadP > 0 && c.rng.Float64() < f.StallReadP {
		p.StallRead = f.StallRead
	}
	p.Partial = f.PartialP > 0 && c.rng.Float64() < f.PartialP
	p.Reset = f.ResetP > 0 && c.rng.Float64() < f.ResetP
	p.Garbage = f.GarbageP > 0 && c.rng.Float64() < f.GarbageP
	cnt := c.counts[HTTPStage]
	if cnt == nil {
		cnt = &ChaosCounts{}
		c.counts[HTTPStage] = cnt
	}
	if p.Latency > 0 {
		cnt.Latencies++
	}
	if p.SlowWrite > 0 {
		cnt.SlowWrites++
	}
	if p.StallRead > 0 {
		cnt.StallReads++
	}
	if p.Partial {
		cnt.Partials++
	}
	if p.Reset {
		cnt.Resets++
	}
	if p.Garbage {
		cnt.Garbage++
	}
	return p
}
