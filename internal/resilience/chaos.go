package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel every chaos-injected error wraps, so
// tests and gates can tell injected faults from real ones.
var ErrInjected = errors.New("resilience: injected fault")

// Fault describes the faults injected into one pipeline stage.
type Fault struct {
	// Latency is added before the stage runs (context-aware: the sleep
	// aborts with ctx.Err() when the deadline fires first, which is
	// exactly how a slow stage turns into a deadline miss).
	Latency time.Duration
	// LatencyP is the probability of injecting Latency; 0 with a
	// non-zero Latency means always.
	LatencyP float64
	// ErrorP is the probability of an injected error.
	ErrorP float64
	// PanicP is the probability of an injected panic.
	PanicP float64
}

// ChaosCounts tallies the faults injected into one stage.
type ChaosCounts struct {
	Latencies, Errors, Panics int
}

// Chaos is a deterministic, seedable fault injector. Pipeline stages
// call Inject at their boundary; whether a fault fires is drawn from a
// single seeded source, so a fixed seed yields a reproducible fault
// sequence for sequential runs (concurrent runs draw in scheduling
// order, so only the distribution is reproducible). The zero of the
// type is not usable; build with NewChaos or ParseChaos. All methods
// are safe for concurrent use; a nil *Chaos injects nothing.
type Chaos struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	counts map[string]*ChaosCounts
}

// NewChaos builds an injector with no faults configured.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:    rand.New(rand.NewSource(seed)),
		faults: make(map[string]Fault),
		counts: make(map[string]*ChaosCounts),
	}
}

// Set configures the fault for one stage ("*" applies to every stage
// without its own entry). Returns c for chaining.
func (c *Chaos) Set(stage string, f Fault) *Chaos {
	if f.Latency > 0 && f.LatencyP <= 0 {
		f.LatencyP = 1
	}
	c.mu.Lock()
	c.faults[stage] = f
	c.mu.Unlock()
	return c
}

// Injected snapshots per-stage injection counts.
func (c *Chaos) Injected() map[string]ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ChaosCounts, len(c.counts))
	for k, v := range c.counts {
		out[k] = *v
	}
	return out
}

// Stages lists the configured stages in sorted order.
func (c *Chaos) Stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.faults))
	for k := range c.faults {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseChaos builds an injector from a flag-friendly spec:
//
//	stage:fault[,fault][;stage:fault...]
//
// where each fault is one of
//
//	lat=DURATION[@PROB]   added latency (e.g. lat=300ms@0.5)
//	err=PROB              injected error rate
//	panic=PROB            injected panic rate
//
// and stage is a pipeline stage name (speech, nlq, solver,
// progressive, viz) or "*" for all. Example:
//
//	solver:lat=300ms@0.8,err=0.05;nlq:panic=0.02
func ParseChaos(spec string, seed int64) (*Chaos, error) {
	c := NewChaos(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stage, faults, ok := strings.Cut(part, ":")
		if !ok || strings.TrimSpace(stage) == "" {
			return nil, fmt.Errorf("resilience: chaos spec %q: want stage:fault[,fault]", part)
		}
		var f Fault
		for _, fs := range strings.Split(faults, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(fs), "=")
			if !ok {
				return nil, fmt.Errorf("resilience: chaos fault %q: want key=value", fs)
			}
			switch key {
			case "lat":
				durStr, probStr, hasProb := strings.Cut(val, "@")
				d, err := time.ParseDuration(durStr)
				if err != nil {
					return nil, fmt.Errorf("resilience: chaos latency %q: %w", val, err)
				}
				f.Latency = d
				f.LatencyP = 1
				if hasProb {
					p, err := parseProb(probStr)
					if err != nil {
						return nil, err
					}
					f.LatencyP = p
				}
			case "err":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.ErrorP = p
			case "panic":
				p, err := parseProb(val)
				if err != nil {
					return nil, err
				}
				f.PanicP = p
			default:
				return nil, fmt.Errorf("resilience: unknown chaos fault %q (want lat|err|panic)", key)
			}
		}
		c.Set(strings.TrimSpace(stage), f)
	}
	return c, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	var p float64
	if _, err := fmt.Sscanf(s, "%g", &p); err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("resilience: chaos probability %q: want a number in [0,1]", s)
	}
	return p, nil
}

// chaosKey is the private context key for the attached injector.
type chaosKey struct{}

// WithChaos attaches c to the context so instrumented stages inject.
func WithChaos(ctx context.Context, c *Chaos) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, chaosKey{}, c)
}

// ChaosFrom returns the attached injector, or nil.
func ChaosFrom(ctx context.Context) *Chaos {
	c, _ := ctx.Value(chaosKey{}).(*Chaos)
	return c
}

// Inject runs the configured faults for stage at an instrumented
// boundary: it may sleep (returning ctx.Err() if the deadline fires
// mid-sleep), return an error wrapping ErrInjected, or panic. Without
// an injector in ctx (the production path) it is a single pointer
// check. Call it right after the stage's span opens so injected
// deadline misses are blamed on the right stage.
func Inject(ctx context.Context, stage string) error {
	c := ChaosFrom(ctx)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	f, ok := c.faults[stage]
	if !ok {
		f, ok = c.faults["*"]
	}
	if !ok {
		c.mu.Unlock()
		return nil
	}
	// Draw all three decisions in a fixed order so the consumed
	// randomness per call is constant regardless of which faults fire.
	sleep := f.LatencyP > 0 && c.rng.Float64() < f.LatencyP
	fail := f.ErrorP > 0 && c.rng.Float64() < f.ErrorP
	explode := f.PanicP > 0 && c.rng.Float64() < f.PanicP
	cnt := c.counts[stage]
	if cnt == nil {
		cnt = &ChaosCounts{}
		c.counts[stage] = cnt
	}
	if sleep {
		cnt.Latencies++
	}
	if explode {
		cnt.Panics++
	} else if fail {
		cnt.Errors++
	}
	c.mu.Unlock()

	if sleep {
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if explode {
		panic(fmt.Sprintf("chaos: injected panic in stage %q", stage))
	}
	if fail {
		return fmt.Errorf("chaos: stage %q: %w", stage, ErrInjected)
	}
	return nil
}
