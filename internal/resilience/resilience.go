// Package resilience is MUVE's overload- and failure-handling layer:
// the mechanisms the serving engine composes around planning so that a
// degraded-but-fast answer is always preferred over a late exact one —
// the paper's own robustness argument (Section 7's interactive budget,
// and the fact-set companion paper's "concise answers beat late ones"
// principle for voice interfaces), promoted from a single fallback
// branch to first-class, observable machinery:
//
//   - Admission: a bounded admission queue in front of the worker
//     pool, with per-priority lanes (interactive vs. batch) and a
//     depth watermark — static, or driven by a CoDel sojourn-target
//     controller — past which excess requests fast-fail with a
//     RejectError (mapped to HTTP 429 + Retry-After) instead of
//     queueing until the request timeout;
//   - CoDel: the adaptive watermark controller — a low quantile of
//     queue sojourn over a sliding window stands in for CoDel's
//     min-over-interval, halving the watermark while the queue fails
//     to drain under the target and growing it back when it does;
//   - RetryBudget: a per-session token bucket that keeps client
//     retries a bounded fraction of first attempts (no retry storms);
//   - Ladder: a degradation ladder — an ordered list of rungs (exact
//     ILP → greedy → stale cached answer → minimal single-plot
//     answer), each attempted only while the remaining deadline budget
//     allows, with per-rung budget caps and panic containment;
//   - Breaker / BreakerSet: per-stage circuit breakers that trip after
//     consecutive deadline misses blamed on a stage, skip the
//     expensive rung entirely while open, and half-open with bounded
//     probe requests after a cooldown;
//   - Chaos: a deterministic, seedable fault-injection layer that
//     wraps pipeline stages with latency, error and panic injection —
//     and, under the reserved "http" stage, transport faults (slow or
//     partial writes, stalled reads, mid-response resets, garbage
//     bodies) applied by serve's HTTP chaos middleware — so the
//     ladder, the breakers and the client-facing contract are
//     exercised by tests and by `muvebench -chaos` rather than
//     trusted on faith;
//   - WorkerSplit: fair division of the solver-worker budget across
//     concurrent requests, so parallel branch-and-bound accelerates a
//     lone interactive request without oversubscribing the CPU when
//     many overlap (interactive lane draws on the full budget, batch
//     on the remainder).
//
// The package depends only on the standard library plus internal/obs
// (itself dependency-free) so every layer of the pipeline (including
// muve itself) can import it without cycles.
package resilience

import (
	"fmt"
	"strings"
	"time"
)

// Priority is an admission lane. Interactive traffic (a user waiting
// on a voice answer) is isolated from batch traffic (benchmarks,
// crawlers, prefetchers) so a batch flood cannot starve users.
type Priority uint8

const (
	// Interactive is the default lane: user-facing requests.
	Interactive Priority = iota
	// Batch is the background lane: benchmark and bulk requests.
	Batch
)

// String names the lane.
func (p Priority) String() string {
	if p == Batch {
		return "batch"
	}
	return "interactive"
}

// RejectError reports a request fast-failed by admission control: the
// lane's queue was past its watermark. Servers should map it to HTTP
// 429 with a Retry-After of RetryAfter.
type RejectError struct {
	// Priority is the lane the request was rejected from.
	Priority Priority
	// Depth is the lane's queue depth at rejection time.
	Depth int
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

// Error describes the rejection.
func (e *RejectError) Error() string {
	return fmt.Sprintf("resilience: %s admission queue full (depth %d), retry after %s",
		e.Priority, e.Depth, e.RetryAfter)
}

// ShedError reports a queued request shed by admission control because
// its deadline passed before a slot freed: granting it a worker would
// burn capacity computing an answer nobody is waiting for. Servers
// should map it to HTTP 504.
type ShedError struct {
	// Priority is the lane the request was shed from.
	Priority Priority
	// Waited is how long the request sat queued before being shed.
	Waited time.Duration
}

// Error describes the shed.
func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: %s request shed after %s queued (deadline expired)",
		e.Priority, e.Waited)
}

// SkipError is returned by a ladder Attempt to decline a rung without
// charging it as a failure — e.g. the rung's circuit breaker is open,
// or there is no stale answer to serve. Descend records the skip and
// moves to the next rung.
type SkipError struct {
	// Reason labels the skip for outcomes and traces ("breaker",
	// "no-stale", ...).
	Reason string
}

// Error describes the skip.
func (e *SkipError) Error() string { return "resilience: rung skipped: " + e.Reason }

// ExhaustedError reports that every rung of the ladder was skipped or
// failed: the request cannot be answered, even degraded. Servers
// should map it to HTTP 503. Unwrap exposes the deepest real attempt
// error so errors.Is(err, context.DeadlineExceeded) still works.
type ExhaustedError struct {
	// Outcomes records what happened at each rung, in descent order.
	Outcomes []Outcome
}

// Error summarizes the descent.
func (e *ExhaustedError) Error() string {
	parts := make([]string, 0, len(e.Outcomes))
	for _, o := range e.Outcomes {
		switch {
		case o.Skipped:
			parts = append(parts, o.Rung+": skipped ("+o.Reason+")")
		case o.Err != nil:
			parts = append(parts, o.Rung+": "+o.Err.Error())
		}
	}
	return "resilience: ladder exhausted [" + strings.Join(parts, "; ") + "]"
}

// Unwrap returns the last real (non-skip) attempt error, so error
// classification by errors.Is/As sees through the ladder.
func (e *ExhaustedError) Unwrap() error {
	for i := len(e.Outcomes) - 1; i >= 0; i-- {
		if !e.Outcomes[i].Skipped && e.Outcomes[i].Err != nil {
			return e.Outcomes[i].Err
		}
	}
	return nil
}
