package resilience

import (
	"fmt"
	"sync"
	"time"
)

// RetryBudgetConfig sizes a RetryBudget.
type RetryBudgetConfig struct {
	// Burst is the bucket capacity: the number of retries a session can
	// spend back-to-back before the refill rate governs. Default 4.
	Burst float64
	// PerSec is the token refill rate. Default 0.5 (one retry every
	// two seconds, sustained).
	PerSec float64
	// Clock injects a time source for deterministic tests.
	Clock func() time.Time
}

// RetryBudget is a token-bucket retry limiter, after the gRPC retry
// design: each permitted retry spends a token and tokens refill at a
// fixed rate, so retries stay a bounded fraction of first attempts and
// a failure spike cannot amplify itself into a retry storm. The bucket
// starts full. A nil *RetryBudget permits everything (budgeting
// disabled). All methods are safe for concurrent use.
type RetryBudget struct {
	cfg RetryBudgetConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewRetryBudget builds a full bucket.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	if cfg.Burst <= 0 {
		cfg.Burst = 4
	}
	if cfg.PerSec <= 0 {
		cfg.PerSec = 0.5
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &RetryBudget{cfg: cfg, tokens: cfg.Burst, last: cfg.Clock()}
}

// refill advances the bucket to now. Called with b.mu held.
func (b *RetryBudget) refill(now time.Time) {
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.cfg.PerSec
		if b.tokens > b.cfg.Burst {
			b.tokens = b.cfg.Burst
		}
	}
	b.last = now
}

// Allow spends one token if available and reports whether the retry
// may proceed.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(b.cfg.Clock())
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current balance (refilled to now).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(b.cfg.Clock())
	return b.tokens
}

// RetryBudgetError reports a retry refused because the session's retry
// budget is exhausted. Servers should map it to HTTP 429 with a
// Retry-After of RetryAfter: the client should back off, not reissue.
type RetryBudgetError struct {
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

// Error describes the refusal.
func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("resilience: retry budget exhausted, retry after %s", e.RetryAfter)
}
