package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// enqueueWaiter starts one queued Acquire and blocks until it is
// actually in the lane's queue, so tests control arrival order.
func enqueueWaiter(t *testing.T, a *Admission, ctx context.Context, p Priority, done chan<- error, after func()) {
	t.Helper()
	depth := a.Depth(p)
	go func() {
		r, err := a.Acquire(ctx, p)
		if err == nil {
			if after != nil {
				after()
			}
			r()
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.Depth(p) <= depth {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionEarliestDeadlineFirst(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Capacity: 1})
	release, err := a.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}

	// Four waiters, arriving in an order that disagrees with their
	// deadlines: late, early, middle, none. EDF must grant early,
	// middle, late, then the deadline-less one.
	order := make(chan string, 4)
	errs := make(chan error, 4)
	add := func(name string, deadline time.Duration) {
		ctx := context.Background()
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Now().Add(deadline))
			t.Cleanup(cancel)
		}
		enqueueWaiter(t, a, ctx, Interactive, errs, func() { order <- name })
	}
	add("late", 10*time.Hour)
	add("early", time.Hour)
	add("middle", 5*time.Hour)
	add("none", 0)

	release()
	want := []string{"early", "middle", "late", "none"}
	for _, w := range want {
		if got := <-order; got != w {
			t.Fatalf("grant order: got %q, want %q", got, w)
		}
	}
	for range want {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// fakeClock is a settable time source safe for concurrent reads.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestAdmissionShedsExpiredWaiters(t *testing.T) {
	// The fake clock makes expiry deterministic: the waiters' ctx
	// deadlines are real-time hours away (their timers never fire
	// inside the test), but advancing the fake clock past them makes
	// the controller treat them as expired on the next release.
	clk := &fakeClock{now: time.Now()}
	var shedMu sync.Mutex
	var sheds []Priority
	a := NewAdmission(AdmissionConfig{
		Capacity: 1,
		Clock:    clk.Now,
		OnShed: func(p Priority) {
			shedMu.Lock()
			sheds = append(sheds, p)
			shedMu.Unlock()
		},
	})
	release, err := a.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}

	expCtx, cancel1 := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel1()
	liveCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(5*time.Hour))
	defer cancel2()

	expired := make(chan error, 1)
	live := make(chan error, 1)
	forever := make(chan error, 1)
	enqueueWaiter(t, a, expCtx, Interactive, expired, nil)
	enqueueWaiter(t, a, liveCtx, Interactive, live, nil)
	enqueueWaiter(t, a, context.Background(), Interactive, forever, nil)

	// Two hours pass: the first waiter's deadline is now behind the
	// clock, the second's is still ahead.
	clk.Advance(2 * time.Hour)
	release()

	var shed *ShedError
	if err := <-expired; !errors.As(err, &shed) {
		t.Fatalf("expired waiter err = %v, want ShedError", err)
	}
	if shed.Priority != Interactive || shed.Waited != 2*time.Hour {
		t.Errorf("shed = %+v, want interactive after 2h", shed)
	}
	if err := <-live; err != nil {
		t.Fatalf("live waiter: %v", err)
	}
	if err := <-forever; err != nil {
		t.Fatalf("deadline-less waiter: %v", err)
	}
	shedMu.Lock()
	defer shedMu.Unlock()
	if len(sheds) != 1 || sheds[0] != Interactive {
		t.Errorf("OnShed calls = %v, want [interactive]", sheds)
	}
	if d := a.Depth(Interactive); d != 0 {
		t.Errorf("depth after drain = %d", d)
	}
}

func TestAdmissionShedMapsTo504(t *testing.T) {
	err := &ShedError{Priority: Interactive, Waited: time.Second}
	if err.Error() == "" {
		t.Error("empty ShedError message")
	}
}

func TestAdmissionShedSkipsExpiredBeforeBatch(t *testing.T) {
	// An expired interactive waiter must not block a batch waiter from
	// taking the freed slot.
	clk := &fakeClock{now: time.Now()}
	a := NewAdmission(AdmissionConfig{Capacity: 1, Clock: clk.Now})
	release, err := a.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}

	expCtx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	expired := make(chan error, 1)
	batch := make(chan error, 1)
	enqueueWaiter(t, a, expCtx, Interactive, expired, nil)
	enqueueWaiter(t, a, context.Background(), Batch, batch, nil)

	clk.Advance(2 * time.Hour)
	release()

	var shed *ShedError
	if err := <-expired; !errors.As(err, &shed) {
		t.Fatalf("expired waiter err = %v, want ShedError", err)
	}
	if err := <-batch; err != nil {
		t.Fatalf("batch waiter: %v", err)
	}
}
