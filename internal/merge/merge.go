// Package merge implements MUVE's query merging (paper Section 8.1): the
// candidate queries shown in one multiplot are similar by construction, so
// MUVE "merges queries on the same table with similar predicates. For
// instance, it replaces multiple equality predicates on the same column by
// a corresponding IN condition while adding result columns for each
// aggregate of the merged queries." Merge decisions use the engine's
// optimizer cost model, as the original uses Postgres' estimates.
package merge

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"muve/internal/core"
	"muve/internal/sqldb"
)

// Result is one candidate query's computed value.
type Result struct {
	// Value is the numeric result; meaningful only when Valid.
	Value float64
	// Valid is false when the query's selection was empty and the
	// aggregate is NULL (SUM/AVG/MIN/MAX over no rows).
	Valid bool
}

// Group is a set of candidate queries answered by one merged query.
type Group struct {
	// Members indexes the planner's candidate list.
	Members []int
	// Merged is the rewritten query (IN + GROUP BY, or multi-aggregate).
	Merged sqldb.Query
	// KeyCol is the GROUP BY column for value-merged groups; empty for
	// aggregate-merged groups.
	KeyCol string
	// keys maps each member to its group-key value (value merge) or its
	// aggregate position (aggregate merge).
	keys []string
	aggs []int
}

// Plan is a complete execution plan for a candidate set.
type Plan struct {
	Groups  []Group
	Singles []int

	queries []sqldb.Query
}

// BuildPlan partitions the given candidate queries into merged groups and
// singletons. Merging happens only when the optimizer estimates the merged
// query to be cheaper than executing the members separately; with a nil
// db, cost checks are skipped and every structural merge is taken.
func BuildPlan(db *sqldb.DB, queries []sqldb.Query) Plan {
	p := Plan{queries: append([]sqldb.Query(nil), queries...)}
	assigned := make([]bool, len(queries))

	// Stage 1: value merges. Bucket by (table, aggregate, varying pred
	// column, remaining preds).
	buckets := make(map[string][]bucketEntry)
	var bucketOrder []string
	for qi, q := range queries {
		if len(q.Aggs) != 1 || len(q.GroupBy) > 0 {
			continue
		}
		for pi, pred := range q.Preds {
			if pred.Op != sqldb.OpEq {
				continue
			}
			key := valueMergeKey(q, pi)
			if _, ok := buckets[key]; !ok {
				bucketOrder = append(bucketOrder, key)
			}
			buckets[key] = append(buckets[key], bucketEntry{qi: qi, predIdx: pi})
		}
	}
	// Prefer larger buckets first (more sharing); deterministic order.
	sort.SliceStable(bucketOrder, func(i, j int) bool {
		a, b := buckets[bucketOrder[i]], buckets[bucketOrder[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return bucketOrder[i] < bucketOrder[j]
	})
	for _, key := range bucketOrder {
		var entries []bucketEntry
		seenVal := map[string]bool{}
		for _, e := range buckets[key] {
			if assigned[e.qi] {
				continue
			}
			v := queries[e.qi].Preds[e.predIdx].Values[0].String()
			if seenVal[v] {
				continue // identical predicate value: same query twice
			}
			seenVal[v] = true
			entries = append(entries, e)
		}
		if len(entries) < 2 {
			continue
		}
		g := buildValueGroup(queries, entries)
		if db != nil && !mergeBeneficial(db, g, queries) {
			continue
		}
		for _, e := range entries {
			assigned[e.qi] = true
		}
		p.Groups = append(p.Groups, g)
	}

	// Stage 2: aggregate merges among the rest — same table and identical
	// predicates, different aggregates; one scan computes all of them.
	aggBuckets := make(map[string][]int)
	var aggOrder []string
	for qi, q := range queries {
		if assigned[qi] || len(q.Aggs) != 1 || len(q.GroupBy) > 0 {
			continue
		}
		key := predsKey(q, -1) + "|tbl=" + q.Table
		if _, ok := aggBuckets[key]; !ok {
			aggOrder = append(aggOrder, key)
		}
		aggBuckets[key] = append(aggBuckets[key], qi)
	}
	sort.Strings(aggOrder)
	for _, key := range aggOrder {
		members := aggBuckets[key]
		if len(members) < 2 {
			continue
		}
		g := buildAggGroup(queries, members)
		if db != nil && !mergeBeneficial(db, g, queries) {
			continue
		}
		for _, qi := range members {
			assigned[qi] = true
		}
		p.Groups = append(p.Groups, g)
	}

	for qi := range queries {
		if !assigned[qi] {
			p.Singles = append(p.Singles, qi)
		}
	}
	return p
}

// valueMergeKey canonicalizes a query with predicate pi's value abstracted
// away: queries sharing this key merge via IN on that predicate's column.
func valueMergeKey(q sqldb.Query, pi int) string {
	return fmt.Sprintf("tbl=%s|agg=%s|col=%s|%s",
		q.Table, q.Aggs[0].String(), q.Preds[pi].Col, predsKey(q, pi))
}

// predsKey canonically serializes predicates, skipping index `skip`.
func predsKey(q sqldb.Query, skip int) string {
	var parts []string
	for i, p := range q.Preds {
		if i == skip {
			continue
		}
		parts = append(parts, p.String())
	}
	sort.Strings(parts)
	return "preds=" + strings.Join(parts, "&")
}

// bucketEntry locates one mergeable predicate of one query.
type bucketEntry struct {
	qi      int
	predIdx int
}

// buildValueGroup rewrites members into one IN + GROUP BY query.
func buildValueGroup(queries []sqldb.Query, entries []bucketEntry) Group {
	first := queries[entries[0].qi]
	keyCol := first.Preds[entries[0].predIdx].Col
	g := Group{KeyCol: keyCol}
	merged := first.Clone()
	var vals []sqldb.Value
	for _, e := range entries {
		v := queries[e.qi].Preds[e.predIdx].Values[0]
		vals = append(vals, v)
		g.Members = append(g.Members, e.qi)
		g.keys = append(g.keys, v.Display())
	}
	merged.Preds[entries[0].predIdx] = sqldb.Predicate{Col: keyCol, Op: sqldb.OpIn, Values: vals}
	merged.GroupBy = []string{keyCol}
	g.Merged = merged
	return g
}

// buildAggGroup rewrites members into one multi-aggregate query.
func buildAggGroup(queries []sqldb.Query, members []int) Group {
	g := Group{Members: append([]int(nil), members...)}
	merged := queries[members[0]].Clone()
	merged.Aggs = nil
	seen := map[string]int{}
	for _, qi := range members {
		a := queries[qi].Aggs[0]
		pos, ok := seen[a.String()]
		if !ok {
			pos = len(merged.Aggs)
			seen[a.String()] = pos
			merged.Aggs = append(merged.Aggs, a)
		}
		g.aggs = append(g.aggs, pos)
	}
	g.Merged = merged
	return g
}

// mergeBeneficial compares the optimizer's estimate for the merged query
// against the sum of the members' individual estimates.
func mergeBeneficial(db *sqldb.DB, g Group, queries []sqldb.Query) bool {
	mergedEst, err := db.EstimateCost(g.Merged)
	if err != nil {
		return false
	}
	sep := 0.0
	for _, qi := range g.Members {
		est, err := db.EstimateCost(queries[qi])
		if err != nil {
			return false
		}
		sep += est.TotalCost
	}
	return mergedEst.TotalCost < sep
}

// EstimatedCost returns the optimizer's estimate for executing the whole
// plan (merged groups plus singles).
func (p Plan) EstimatedCost(db *sqldb.DB) (float64, error) {
	total := 0.0
	for _, g := range p.Groups {
		est, err := db.EstimateCost(g.Merged)
		if err != nil {
			return 0, err
		}
		total += est.TotalCost
	}
	for _, qi := range p.Singles {
		est, err := db.EstimateCost(p.queries[qi])
		if err != nil {
			return 0, err
		}
		total += est.TotalCost
	}
	return total, nil
}

// Execute runs the plan and scatters results back to candidate indices.
// A sampleRate in (0, 1) runs everything on the engine's deterministic
// sample (approximate processing); 0 or 1 runs exactly.
func (p Plan) Execute(db *sqldb.DB, sampleRate float64, sampleSeed uint64) (map[int]Result, error) {
	out := make(map[int]Result, len(p.queries))
	run := func(q sqldb.Query) (sqldb.Result, error) {
		if sampleRate > 0 && sampleRate < 1 {
			return db.ExecSampled(q, sampleRate, sampleSeed)
		}
		return db.Exec(q)
	}
	for _, g := range p.Groups {
		res, err := run(g.Merged)
		if err != nil {
			return nil, fmt.Errorf("merge: executing group: %w", err)
		}
		if g.KeyCol != "" {
			byKey := make(map[string]sqldb.Value, len(res.Rows))
			for _, row := range res.Rows {
				byKey[row[0].Display()] = row[1]
			}
			for mi, qi := range g.Members {
				v, ok := byKey[g.keys[mi]]
				if !ok {
					// Group absent: empty selection for that member.
					out[qi] = emptyAggregate(p.queries[qi].Aggs[0])
					continue
				}
				out[qi] = toResult(v)
			}
		} else {
			if len(res.Rows) != 1 {
				return nil, fmt.Errorf("merge: aggregate group returned %d rows", len(res.Rows))
			}
			for mi, qi := range g.Members {
				out[qi] = toResult(res.Rows[0][g.aggs[mi]])
			}
		}
	}
	for _, qi := range p.Singles {
		res, err := run(p.queries[qi])
		if err != nil {
			return nil, fmt.Errorf("merge: executing single query: %w", err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			return nil, fmt.Errorf("merge: single query returned unexpected shape")
		}
		out[qi] = toResult(res.Rows[0][0])
	}
	return out, nil
}

// toResult converts an engine value.
func toResult(v sqldb.Value) Result {
	if v.IsNull() {
		return Result{Value: math.NaN(), Valid: false}
	}
	return Result{Value: v.AsFloat(), Valid: true}
}

// emptyAggregate is the result of an aggregate over an empty selection.
func emptyAggregate(a sqldb.Aggregate) Result {
	if a.Func == sqldb.AggCount {
		return Result{Value: 0, Valid: true}
	}
	return Result{Value: math.NaN(), Valid: false}
}

// ProcessingGroups converts a plan into the planner's processing-group
// form for processing-cost-aware optimization (Section 8.1's ILP
// extension): one group per merged query and per single, each carrying its
// optimizer cost estimate.
func (p Plan) ProcessingGroups(db *sqldb.DB) ([]core.ProcessingGroup, error) {
	var out []core.ProcessingGroup
	for _, g := range p.Groups {
		est, err := db.EstimateCost(g.Merged)
		if err != nil {
			return nil, err
		}
		out = append(out, core.ProcessingGroup{
			Queries: append([]int(nil), g.Members...),
			Cost:    est.TotalCost,
		})
	}
	for _, qi := range p.Singles {
		est, err := db.EstimateCost(p.queries[qi])
		if err != nil {
			return nil, err
		}
		out = append(out, core.ProcessingGroup{Queries: []int{qi}, Cost: est.TotalCost})
	}
	return out, nil
}

// SeparateCost estimates executing every query individually, the baseline
// merging is compared against (Figure 7).
func SeparateCost(db *sqldb.DB, queries []sqldb.Query) (float64, error) {
	total := 0.0
	for _, q := range queries {
		est, err := db.EstimateCost(q)
		if err != nil {
			return 0, err
		}
		total += est.TotalCost
	}
	return total, nil
}

// ExecuteSeparatelyResults runs every query individually and returns
// full Results — the unmerged baseline for candidate sets that include
// grouped or multi-aggregate shapes.
func ExecuteSeparatelyResults(db *sqldb.DB, queries []sqldb.Query) (map[int]sqldb.Result, error) {
	out := make(map[int]sqldb.Result, len(queries))
	for qi, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		out[qi] = res
	}
	return out, nil
}

// ExecuteSeparately runs every query individually (the unmerged baseline).
func ExecuteSeparately(db *sqldb.DB, queries []sqldb.Query) (map[int]Result, error) {
	out := make(map[int]Result, len(queries))
	for qi, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			return nil, fmt.Errorf("merge: query %d returned unexpected shape", qi)
		}
		out[qi] = toResult(res.Rows[0][0])
	}
	return out, nil
}
