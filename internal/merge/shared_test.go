package merge

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"muve/internal/sqldb"
	"muve/internal/workload"
)

func TestBuildSharedPlanShapes(t *testing.T) {
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT sum(response_hours), avg(response_hours) FROM requests WHERE agency = 'NYPD' GROUP BY borough"),
		q("SELECT count(*) FROM dob_jobs"),
		q("SELECT max(response_hours) FROM requests GROUP BY status, year"),
	}
	p := BuildSharedPlan(queries)
	if p.Candidates() != 4 {
		t.Fatalf("Candidates() = %d", p.Candidates())
	}
	// All three requests queries — scalar, grouped multi-agg, composite
	// GROUP BY — share one scan; the lone dob_jobs query is demoted to
	// the direct executor.
	if len(p.Scans) != 1 || len(p.Scans[0].Members) != 3 || p.Scans[0].Table != "requests" {
		t.Fatalf("scans = %+v", p.Scans)
	}
	if len(p.Singles) != 1 || p.Singles[0] != 2 {
		t.Fatalf("singles = %v, want [2]", p.Singles)
	}
}

func TestExecuteResultsMatchesSeparate(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*), avg(response_hours) FROM requests WHERE agency = 'NYPD' GROUP BY borough"),
		q("SELECT sum(response_hours) FROM requests GROUP BY status, year"),
		q("SELECT min(response_hours), max(response_hours) FROM requests"),
		q("SELECT count(*) FROM requests WHERE borough = 'Atlantis' GROUP BY agency"),
	}
	p := BuildSharedPlan(queries)
	got, stats, err := p.ExecuteResults(db, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scans != 1 {
		t.Fatalf("stats = %+v, want exactly one shared scan", stats)
	}
	want, err := ExecuteSeparatelyResults(db, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if diff := resultDiff(got[qi], want[qi]); diff != "" {
			t.Errorf("exact mismatch on %s: %s", queries[qi].SQL(), diff)
		}
	}
	// Sampled execution agrees with per-query sampled execution too.
	gotS, _, err := p.ExecuteResults(db, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for qi, query := range queries {
		res, err := db.ExecSampled(query, 0.3, 42)
		if err != nil {
			t.Fatal(err)
		}
		if diff := resultDiff(gotS[qi], res); diff != "" {
			t.Errorf("sampled mismatch on %s: %s", query.SQL(), diff)
		}
	}
}

// resultDiff reports the first bit-level disagreement between two full
// results, or "" when identical.
func resultDiff(a, b sqldb.Result) string {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("shape %dx%d vs %dx%d", len(a.Rows), len(a.Cols), len(b.Rows), len(b.Cols))
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return fmt.Sprintf("col %d: %q vs %q", i, a.Cols[i], b.Cols[i])
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Sprintf("row %d width %d vs %d", i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.K != bv.K || av.S != bv.S || av.I != bv.I ||
				math.Float64bits(av.F) != math.Float64bits(bv.F) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, av, bv)
			}
		}
	}
	return ""
}

// The fuzz DB is built once per process: fuzz workers each pay one
// build, then every input reuses it read-only.
var (
	fuzzDBOnce sync.Once
	fuzzDB     *sqldb.DB
)

func sharedFuzzDB() *sqldb.DB {
	fuzzDBOnce.Do(func() {
		tbl, err := workload.Build(workload.NYC311, 2000, 9)
		if err != nil {
			panic(err)
		}
		fuzzDB = sqldb.NewDB()
		fuzzDB.Register(tbl)
	})
	return fuzzDB
}

// fuzzQueries decodes a byte string into a deterministic candidate set
// over the requests table. Every byte steers one decision, so the fuzzer
// can mutate aggregate shapes, GROUP BY keys, and predicate constants
// independently. Constants include out-of-domain strings so never-
// matching predicates and empty grouped results stay covered.
func fuzzQueries(data []byte) []sqldb.Query {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := int(data[0])
		data = data[1:]
		return b
	}
	aggs := []sqldb.Aggregate{
		{Func: sqldb.AggCount},
		{Func: sqldb.AggCount, Col: "response_hours"},
		{Func: sqldb.AggSum, Col: "response_hours"},
		{Func: sqldb.AggAvg, Col: "response_hours"},
		{Func: sqldb.AggMin, Col: "response_hours"},
		{Func: sqldb.AggMax, Col: "year"},
		{Func: sqldb.AggSum, Col: "year"},
	}
	strCols := []string{"complaint_type", "borough", "agency", "status", "channel_type"}
	consts := []string{"Brooklyn", "Bronx", "Queens", "NYPD", "Noise", "Open", "Closed", "phone", "Atlantis", ""}
	groupings := [][]string{
		nil,
		{"borough"},
		{"agency"},
		{"status"},
		{"year"},
		{"borough", "status"},
		{"agency", "year"},
	}
	nq := next()%12 + 1
	queries := make([]sqldb.Query, 0, nq)
	for i := 0; i < nq; i++ {
		qq := sqldb.Query{Table: "requests"}
		for na := next()%3 + 1; na > 0; na-- {
			qq.Aggs = append(qq.Aggs, aggs[next()%len(aggs)])
		}
		qq.GroupBy = groupings[next()%len(groupings)]
		for np := next() % 3; np > 0; np-- {
			col := strCols[next()%len(strCols)]
			if next()%4 == 0 {
				vals := []sqldb.Value{}
				for k := next()%3 + 1; k > 0; k-- {
					vals = append(vals, sqldb.Str(consts[next()%len(consts)]))
				}
				qq.Preds = append(qq.Preds, sqldb.Predicate{Col: col, Op: sqldb.OpIn, Values: vals})
			} else {
				qq.Preds = append(qq.Preds, sqldb.Predicate{Col: col, Op: sqldb.OpEq,
					Values: []sqldb.Value{sqldb.Str(consts[next()%len(consts)])}})
			}
		}
		queries = append(queries, qq)
	}
	return queries
}

// FuzzSharedPlan drives random candidate sets through BuildSharedPlan +
// ExecuteResults and demands bit-identical agreement with the unmerged
// per-query baseline — the shared executor's core guarantee under
// adversarial query shapes.
func FuzzSharedPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 0, 1, 1, 1, 0})
	f.Add([]byte{7, 2, 3, 4, 5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{11, 0, 5, 2, 8, 0, 9, 9, 9, 1, 4, 2, 0, 6, 3, 250, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		db := sharedFuzzDB()
		queries := fuzzQueries(data)
		p := BuildSharedPlan(queries)
		got, _, err := p.ExecuteResults(db, 0, 0)
		if err != nil {
			t.Fatalf("ExecuteResults: %v", err)
		}
		want, err := ExecuteSeparatelyResults(db, queries)
		if err != nil {
			t.Fatalf("ExecuteSeparatelyResults: %v", err)
		}
		for qi := range queries {
			if diff := resultDiff(got[qi], want[qi]); diff != "" {
				t.Fatalf("mismatch on %s: %s", queries[qi].SQL(), diff)
			}
		}
		// Sampled path: the seed derives from the input so the fuzzer can
		// explore sample-membership boundaries too.
		var seed uint64
		for _, b := range data {
			seed = seed*131 + uint64(b)
		}
		rate := 0.05 + float64(seed%90)/100
		gotS, _, err := p.ExecuteResults(db, rate, seed)
		if err != nil {
			t.Fatalf("ExecuteResults sampled: %v", err)
		}
		for qi, query := range queries {
			res, err := db.ExecSampled(query, rate, seed)
			if err != nil {
				t.Fatalf("ExecSampled: %v", err)
			}
			if diff := resultDiff(gotS[qi], res); diff != "" {
				t.Fatalf("sampled mismatch on %s: %s", query.SQL(), diff)
			}
		}
	})
}
