package merge

import (
	"math"
	"math/rand"
	"testing"

	"muve/internal/sqldb"
	"muve/internal/workload"
)

func mergeDB(t *testing.T) *sqldb.DB {
	t.Helper()
	tbl, err := workload.Build(workload.NYC311, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.NewDB()
	db.Register(tbl)
	return db
}

func q(sql string) sqldb.Query { return sqldb.MustParse(sql) }

func TestBuildPlanValueMerge(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Bronx'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Queens'"),
	}
	p := BuildPlan(db, queries)
	if len(p.Groups) != 1 || len(p.Singles) != 0 {
		t.Fatalf("plan = %d groups, %d singles", len(p.Groups), len(p.Singles))
	}
	g := p.Groups[0]
	if g.KeyCol != "borough" || len(g.Members) != 3 {
		t.Errorf("group = %+v", g)
	}
	if len(g.Merged.GroupBy) != 1 || g.Merged.Preds[0].Op != sqldb.OpIn {
		t.Errorf("merged = %s", g.Merged.SQL())
	}
}

func TestBuildPlanAggMerge(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT sum(response_hours) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT avg(response_hours) FROM requests WHERE borough = 'Brooklyn'"),
	}
	p := BuildPlan(db, queries)
	if len(p.Groups) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Groups[0].KeyCol != "" || len(p.Groups[0].Merged.Aggs) != 2 {
		t.Errorf("agg merge = %s", p.Groups[0].Merged.SQL())
	}
}

func TestBuildPlanUnmergeable(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT sum(response_hours) FROM requests WHERE status = 'Open'"),
	}
	p := BuildPlan(db, queries)
	if len(p.Groups) != 0 || len(p.Singles) != 2 {
		t.Errorf("plan = %d groups, %d singles", len(p.Groups), len(p.Singles))
	}
}

func TestBuildPlanDuplicateQueries(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Bronx'"),
	}
	p := BuildPlan(db, queries)
	// The duplicate cannot join the IN group twice; it lands in singles or
	// its own group, but every query is covered exactly once.
	covered := map[int]int{}
	for _, g := range p.Groups {
		for _, qi := range g.Members {
			covered[qi]++
		}
	}
	for _, qi := range p.Singles {
		covered[qi]++
	}
	for qi := 0; qi < 3; qi++ {
		if covered[qi] != 1 {
			t.Errorf("query %d covered %d times", qi, covered[qi])
		}
	}
}

func TestExecuteMatchesSeparateExecution(t *testing.T) {
	// The core correctness guarantee: merged execution returns exactly the
	// same per-query results as separate execution.
	db := mergeDB(t)
	rng := rand.New(rand.NewSource(21))
	tbl, _ := db.Table("requests")
	gen := workload.NewQueryGen(tbl, rng)
	for trial := 0; trial < 10; trial++ {
		base := gen.Random(2)
		// Derive phonetic-like variants: same template, several values.
		var queries []sqldb.Query
		for _, v := range []string{"Brooklyn", "Bronx", "Queens", "Manhattan"} {
			qq := base.Clone()
			qq.Preds = append([]sqldb.Predicate{{
				Col: "borough", Op: sqldb.OpEq, Values: []sqldb.Value{sqldb.Str(v)},
			}}, qq.Preds[1:]...)
			queries = append(queries, qq)
		}
		queries = append(queries, q("SELECT max(response_hours) FROM requests WHERE status = 'Open'"))
		p := BuildPlan(db, queries)
		merged, err := p.Execute(db, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		separate, err := ExecuteSeparately(db, queries)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			m, s := merged[qi], separate[qi]
			if m.Valid != s.Valid {
				t.Errorf("trial %d query %d: valid %v vs %v (%s)", trial, qi, m.Valid, s.Valid, queries[qi].SQL())
				continue
			}
			if m.Valid && math.Abs(m.Value-s.Value) > 1e-9 {
				t.Errorf("trial %d query %d: %v vs %v (%s)", trial, qi, m.Value, s.Value, queries[qi].SQL())
			}
		}
	}
}

func TestExecuteEmptyGroupMember(t *testing.T) {
	db := mergeDB(t)
	// "Unassigned" may not exist in a small sample; whichever member
	// matches nothing must come back as count 0 rather than vanish.
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE channel_type = 'Phone'"),
		q("SELECT count(*) FROM requests WHERE channel_type = 'NOSUCHVALUE'"),
	}
	p := BuildPlan(db, queries)
	res, err := p.Execute(db, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Valid || res[1].Value != 0 {
		t.Errorf("missing-group count = %+v, want valid 0", res[1])
	}
	// NULL-yielding aggregates over empty groups are invalid.
	queries = []sqldb.Query{
		q("SELECT avg(response_hours) FROM requests WHERE channel_type = 'Phone'"),
		q("SELECT avg(response_hours) FROM requests WHERE channel_type = 'NOSUCHVALUE'"),
	}
	p = BuildPlan(db, queries)
	res, err = p.Execute(db, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Valid {
		t.Errorf("empty avg should be invalid, got %+v", res[1])
	}
}

func TestMergedCostCheaper(t *testing.T) {
	// Figure 7's premise: the merged plan is estimated (and is) cheaper
	// than separate execution.
	db := mergeDB(t)
	var queries []sqldb.Query
	for _, v := range []string{"Brooklyn", "Bronx", "Queens", "Manhattan", "Staten Island"} {
		queries = append(queries, q("SELECT count(*) FROM requests WHERE borough = '"+v+"'"))
	}
	p := BuildPlan(db, queries)
	mergedCost, err := p.EstimatedCost(db)
	if err != nil {
		t.Fatal(err)
	}
	sepCost, err := SeparateCost(db, queries)
	if err != nil {
		t.Fatal(err)
	}
	if mergedCost >= sepCost {
		t.Errorf("merged %v should beat separate %v", mergedCost, sepCost)
	}
	if len(p.Groups) != 1 {
		t.Errorf("expected one merged group, got %d", len(p.Groups))
	}
}

func TestSampledExecution(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Bronx'"),
	}
	p := BuildPlan(db, queries)
	exact, err := p.Execute(db, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := p.Execute(db, 0.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if !approx[qi].Valid {
			t.Fatalf("sampled result invalid")
		}
		rel := math.Abs(approx[qi].Value-exact[qi].Value) / exact[qi].Value
		if rel > 0.3 {
			t.Errorf("query %d: sampled rel err %v", qi, rel)
		}
	}
}

func TestProcessingGroups(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Bronx'"),
		q("SELECT max(year) FROM requests WHERE status = 'Open'"),
	}
	p := BuildPlan(db, queries)
	groups, err := p.ProcessingGroups(db)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{}
	for _, g := range groups {
		if g.Cost <= 0 {
			t.Errorf("group with non-positive cost: %+v", g)
		}
		for _, qi := range g.Queries {
			covered[qi] = true
		}
	}
	for qi := range queries {
		if !covered[qi] {
			t.Errorf("query %d not covered by any processing group", qi)
		}
	}
}

func TestBuildPlanNilDBStructuralOnly(t *testing.T) {
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE borough = 'Brooklyn'"),
		q("SELECT count(*) FROM requests WHERE borough = 'Bronx'"),
	}
	p := BuildPlan(nil, queries)
	if len(p.Groups) != 1 {
		t.Errorf("nil-db plan should merge structurally: %+v", p)
	}
}

func TestExecuteErrorPropagation(t *testing.T) {
	db := mergeDB(t)
	// A query referencing a missing column builds into the plan (plans are
	// structural) but must fail cleanly at execution.
	queries := []sqldb.Query{
		q("SELECT count(*) FROM requests WHERE nope = 'x'"),
	}
	p := BuildPlan(db, queries)
	if _, err := p.Execute(db, 0, 0); err == nil {
		t.Error("execution of invalid query should fail")
	}
	if _, err := ExecuteSeparately(db, queries); err == nil {
		t.Error("separate execution of invalid query should fail")
	}
	if _, err := p.EstimatedCost(db); err == nil {
		t.Error("cost estimation of invalid query should fail")
	}
	if _, err := p.ProcessingGroups(db); err == nil {
		t.Error("processing groups of invalid query should fail")
	}
}

func TestExecuteUnknownTable(t *testing.T) {
	db := mergeDB(t)
	queries := []sqldb.Query{q("SELECT count(*) FROM nope WHERE a = 'x'")}
	p := BuildPlan(db, queries)
	if _, err := p.Execute(db, 0, 0); err == nil {
		t.Error("unknown table should fail at execution")
	}
}

func TestBuildPlanEmptyInput(t *testing.T) {
	p := BuildPlan(nil, nil)
	if len(p.Groups) != 0 || len(p.Singles) != 0 {
		t.Errorf("empty plan = %+v", p)
	}
	res, err := p.Execute(nil, 0, 0)
	if err != nil || len(res) != 0 {
		t.Errorf("empty execute = %v, %v", res, err)
	}
}
