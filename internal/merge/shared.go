package merge

import (
	"fmt"

	"muve/internal/sqldb"
)

// The shared-scan plan generalizes query merging past its same-template
// limit. Classic merging (Plan) only batches candidates whose queries
// differ in a single predicate constant or aggregate; any other
// phonetically-similar candidate still pays its own table scan. A
// SharedPlan instead hands EVERY single-aggregate ungrouped candidate on
// a table — regardless of aggregate function, column, or predicate
// structure — to sqldb's shared-scan executor, which answers all of them
// in one pass. Only shapes outside the shared-scan class (grouped or
// multi-aggregate queries, which MUVE's candidate generator never emits)
// fall back to individual execution.

// ScanGroup is the set of candidates one shared table pass answers.
type ScanGroup struct {
	// Table every member targets.
	Table string
	// Members indexes the planner's candidate list.
	Members []int
}

// SharedPlan assigns candidates to shared scans.
type SharedPlan struct {
	Scans   []ScanGroup
	Singles []int

	queries []sqldb.Query
}

// BuildSharedPlan partitions candidates into per-table shared scans.
// Unlike BuildPlan there is no cost gate: a shared scan is never more
// expensive than the row-at-a-time alternative, because each distinct
// predicate is evaluated at most once and the table is read once total.
func BuildSharedPlan(queries []sqldb.Query) SharedPlan {
	p := SharedPlan{queries: append([]sqldb.Query(nil), queries...)}
	byTable := make(map[string]int)
	for qi, q := range queries {
		if len(q.Aggs) != 1 || len(q.GroupBy) > 0 {
			p.Singles = append(p.Singles, qi)
			continue
		}
		gi, ok := byTable[q.Table]
		if !ok {
			gi = len(p.Scans)
			byTable[q.Table] = gi
			p.Scans = append(p.Scans, ScanGroup{Table: q.Table})
		}
		p.Scans[gi].Members = append(p.Scans[gi].Members, qi)
	}
	return p
}

// Candidates returns the number of candidate queries the plan covers.
func (p SharedPlan) Candidates() int { return len(p.queries) }

// Execute runs every scan group through the shared-scan executor and the
// leftovers individually, scattering results back to candidate indices.
// A sampleRate in (0, 1) runs everything on the engine's deterministic
// sample; results are bit-identical to per-query execution either way.
func (p SharedPlan) Execute(db *sqldb.DB, sampleRate float64, sampleSeed uint64) (map[int]Result, sqldb.ScanStats, error) {
	sampled := sampleRate > 0 && sampleRate < 1
	out := make(map[int]Result, len(p.queries))
	var stats sqldb.ScanStats
	for _, g := range p.Scans {
		qs := make([]sqldb.Query, len(g.Members))
		for mi, qi := range g.Members {
			qs[mi] = p.queries[qi]
		}
		var (
			vals []sqldb.Value
			st   sqldb.ScanStats
			err  error
		)
		if sampled {
			vals, st, err = db.ExecSharedSampled(qs, sampleRate, sampleSeed)
		} else {
			vals, st, err = db.ExecShared(qs)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("merge: shared scan over %q: %w", g.Table, err)
		}
		stats.Add(st)
		for mi, qi := range g.Members {
			out[qi] = toResult(vals[mi])
		}
	}
	for _, qi := range p.Singles {
		q := p.queries[qi]
		var (
			res sqldb.Result
			err error
		)
		if sampled {
			res, err = db.ExecSampled(q, sampleRate, sampleSeed)
		} else {
			res, err = db.Exec(q)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("merge: executing single query: %w", err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			return nil, stats, fmt.Errorf("merge: single query returned unexpected shape")
		}
		out[qi] = toResult(res.Rows[0][0])
	}
	return out, stats, nil
}

// ExecuteSketch answers the whole plan from precomputed aggregate
// sketches, with zero scans at steady state. ok is false — and the map
// nil — unless every candidate resolves from a sketch (sketching
// disabled, an unsketchable template, or any Singles); the caller then
// falls back to a real scan. Sketch answers equal what a sampled
// execution at the sketch rate would return, so callers treat a hit as
// an approximate first paint at db.SketchRate().
func (p SharedPlan) ExecuteSketch(db *sqldb.DB) (map[int]Result, sqldb.ScanStats, bool) {
	if db.SketchRate() == 0 || len(p.Singles) > 0 || len(p.queries) == 0 {
		return nil, sqldb.ScanStats{}, false
	}
	out := make(map[int]Result, len(p.queries))
	var stats sqldb.ScanStats
	for _, g := range p.Scans {
		for _, qi := range g.Members {
			v, st, ok := db.SketchLookup(p.queries[qi])
			if !ok {
				return nil, stats, false
			}
			stats.Add(st)
			out[qi] = toResult(v)
		}
	}
	return out, stats, true
}
