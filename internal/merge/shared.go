package merge

import (
	"fmt"

	"muve/internal/sqldb"
)

// The shared-scan plan generalizes query merging past its same-template
// limit. Classic merging (Plan) only batches candidates whose queries
// differ in a single predicate constant or aggregate; any other
// phonetically-similar candidate still pays its own table scan. A
// SharedPlan instead hands EVERY candidate on a table — regardless of
// aggregate function, column, predicate structure, GROUP BY shape, or
// aggregate count — to sqldb's shared-scan executor, which answers all
// of them in one pass. This subsumes the old same-template IN + GROUP
// BY merge path: a value-merged group is just several grouped
// candidates riding the same scan. The only candidates executed
// individually are singletons, where the shared machinery (predicate
// dedup maps, selection bitmaps) has nothing to amortize and measured
// slightly slower than the direct executor.

// ScanGroup is the set of candidates one shared table pass answers.
type ScanGroup struct {
	// Table every member targets.
	Table string
	// Members indexes the planner's candidate list.
	Members []int
}

// SharedPlan assigns candidates to shared scans.
type SharedPlan struct {
	Scans []ScanGroup
	// Singles are candidates routed through the direct row-at-a-time
	// executor: the sole member of a one-candidate table group, where a
	// shared pass has nothing to share and only pays setup overhead
	// (BENCH_scan.json's 1-candidate arm measured 0.996× speedup).
	Singles []int

	queries []sqldb.Query
}

// BuildSharedPlan partitions candidates into per-table shared scans.
// Unlike BuildPlan there is no cost gate: a shared scan is never more
// expensive than the row-at-a-time alternative, because each distinct
// predicate is evaluated at most once and the table is read once total.
// Any query shape the engine executes — grouped, multi-aggregate, or
// plain scalar — joins its table's scan group; only singleton groups
// are demoted to direct execution.
func BuildSharedPlan(queries []sqldb.Query) SharedPlan {
	p := SharedPlan{queries: append([]sqldb.Query(nil), queries...)}
	byTable := make(map[string]int)
	for qi, q := range queries {
		gi, ok := byTable[q.Table]
		if !ok {
			gi = len(p.Scans)
			byTable[q.Table] = gi
			p.Scans = append(p.Scans, ScanGroup{Table: q.Table})
		}
		p.Scans[gi].Members = append(p.Scans[gi].Members, qi)
	}
	scans := p.Scans[:0]
	for _, g := range p.Scans {
		if len(g.Members) == 1 {
			p.Singles = append(p.Singles, g.Members[0])
			continue
		}
		scans = append(scans, g)
	}
	p.Scans = scans
	return p
}

// Candidates returns the number of candidate queries the plan covers.
func (p SharedPlan) Candidates() int { return len(p.queries) }

// ExecuteResults runs every scan group through the shared-scan executor
// and the singletons through the direct executor, scattering full
// Results back to candidate indices. This is the general entry point:
// grouped and multi-aggregate candidates come back with their full row
// and column shape. A sampleRate in (0, 1) runs everything on the
// engine's deterministic sample; results are bit-identical to per-query
// execution either way.
func (p SharedPlan) ExecuteResults(db *sqldb.DB, sampleRate float64, sampleSeed uint64) (map[int]sqldb.Result, sqldb.ScanStats, error) {
	sampled := sampleRate > 0 && sampleRate < 1
	out := make(map[int]sqldb.Result, len(p.queries))
	var stats sqldb.ScanStats
	for _, g := range p.Scans {
		qs := make([]sqldb.Query, len(g.Members))
		for mi, qi := range g.Members {
			qs[mi] = p.queries[qi]
		}
		var (
			res []sqldb.Result
			st  sqldb.ScanStats
			err error
		)
		if sampled {
			res, st, err = db.ExecSharedResultsSampled(qs, sampleRate, sampleSeed)
		} else {
			res, st, err = db.ExecSharedResults(qs)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("merge: shared scan over %q: %w", g.Table, err)
		}
		stats.Add(st)
		for mi, qi := range g.Members {
			out[qi] = res[mi]
		}
	}
	for _, qi := range p.Singles {
		q := p.queries[qi]
		var (
			res sqldb.Result
			err error
		)
		if sampled {
			res, err = db.ExecSampled(q, sampleRate, sampleSeed)
		} else {
			res, err = db.Exec(q)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("merge: executing single query: %w", err)
		}
		out[qi] = res
	}
	return out, stats, nil
}

// Execute is the scalar view of ExecuteResults for the multiplot
// candidate class (single ungrouped aggregates): one Result value per
// candidate index. It errors when a candidate's result is not scalar —
// callers with grouped or multi-aggregate candidates use
// ExecuteResults.
func (p SharedPlan) Execute(db *sqldb.DB, sampleRate float64, sampleSeed uint64) (map[int]Result, sqldb.ScanStats, error) {
	full, stats, err := p.ExecuteResults(db, sampleRate, sampleSeed)
	if err != nil {
		return nil, stats, err
	}
	out := make(map[int]Result, len(full))
	for qi, res := range full {
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			return nil, stats, fmt.Errorf("merge: candidate %q is not scalar (%dx%d); use ExecuteResults",
				p.queries[qi].SQL(), len(res.Rows), len(res.Cols))
		}
		out[qi] = toResult(res.Rows[0][0])
	}
	return out, stats, nil
}

// ExecuteSketch answers the whole plan from precomputed aggregate
// sketches, with zero scans at steady state. ok is false — and the map
// nil — unless every candidate (scan-group members and singletons
// alike) resolves from a sketch; the caller then falls back to a real
// scan. Sketch answers equal what a sampled execution at the sketch
// rate would return, so callers treat a hit as an approximate first
// paint at db.SketchRate().
func (p SharedPlan) ExecuteSketch(db *sqldb.DB) (map[int]Result, sqldb.ScanStats, bool) {
	if db.SketchRate() == 0 || len(p.queries) == 0 {
		return nil, sqldb.ScanStats{}, false
	}
	out := make(map[int]Result, len(p.queries))
	var stats sqldb.ScanStats
	lookup := func(qi int) bool {
		v, st, ok := db.SketchLookup(p.queries[qi])
		if !ok {
			return false
		}
		stats.Add(st)
		out[qi] = toResult(v)
		return true
	}
	for _, g := range p.Scans {
		for _, qi := range g.Members {
			if !lookup(qi) {
				return nil, stats, false
			}
		}
	}
	for _, qi := range p.Singles {
		if !lookup(qi) {
			return nil, stats, false
		}
	}
	return out, stats, true
}
