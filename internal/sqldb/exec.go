package sqldb

import (
	"fmt"
	"math"
	"sort"
)

// Result is the output of an aggregation query: one row per group (a single
// row for ungrouped queries), with group-key columns first and one column
// per aggregate after them.
type Result struct {
	Cols []string
	Rows [][]Value
}

// Scalar returns the single numeric output of an ungrouped single-aggregate
// query. It errors when the result has a different shape.
func (r Result) Scalar() (float64, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return 0, fmt.Errorf("sqldb: result is not scalar (%dx%d)", len(r.Rows), len(r.Cols))
	}
	v := r.Rows[0][0]
	if v.IsNull() {
		return 0, fmt.Errorf("sqldb: scalar result is NULL (empty input)")
	}
	return v.AsFloat(), nil
}

// execOptions tunes a single execution.
type execOptions struct {
	// sampleRate in (0, 1] executes on a deterministic uniform row sample
	// and scales COUNT and SUM by 1/rate (AVG/MIN/MAX are reported
	// unscaled). Rate 0 or 1 means full execution.
	sampleRate float64
	// sampleSeed varies which rows the sample contains.
	sampleSeed uint64
	// parallelism is the number of scan workers (<=1 means serial).
	parallelism int
}

// execute runs a validated query against a table.
func execute(t *Table, q Query, opt execOptions) (Result, error) {
	if err := q.Validate(t); err != nil {
		return Result{}, err
	}
	if opt.parallelism > 1 && t.NumRows() >= parallelMinRows && canParallelize(t, q) {
		return executeParallel(t, q, opt, opt.parallelism)
	}
	sel, err := filterRows(t, q.Preds, opt)
	if err != nil {
		return Result{}, err
	}
	scale := 1.0
	if opt.sampleRate > 0 && opt.sampleRate < 1 {
		scale = 1 / opt.sampleRate
	}
	if len(q.GroupBy) == 0 {
		row := aggregateRows(t, q.Aggs, sel, scale)
		return Result{Cols: aggColNames(q), Rows: [][]Value{row}}, nil
	}
	return groupAggregate(t, q, sel, scale)
}

// filterRows returns the ids of rows matching every predicate, restricted
// to the sample when sampling is enabled.
func filterRows(t *Table, preds []Predicate, opt execOptions) ([]int32, error) {
	return filterRowsRange(t, preds, opt, 0, t.NumRows())
}

// rowCheck reports whether row i satisfies one predicate.
type rowCheck func(i int) bool

// compilePredicate resolves a predicate against the table: string constants
// are translated to dictionary codes once, so the per-row check is a plain
// integer comparison. It reports "always" when the predicate cannot fail
// and "never" when no row can match (e.g. constant absent from dictionary).
func compilePredicate(t *Table, p Predicate) (chk rowCheck, always, never bool, err error) {
	c := t.Column(p.Col)
	if c == nil {
		return nil, false, false, fmt.Errorf("sqldb: unknown column %q", p.Col)
	}
	switch c.Kind {
	case KindString:
		codes := make(map[int32]struct{}, len(p.Values))
		for _, v := range p.Values {
			if v.K != KindString {
				continue // numeric literal never equals a string
			}
			if code, ok := c.code(v.S); ok {
				codes[code] = struct{}{}
			}
		}
		if len(codes) == 0 {
			return nil, false, true, nil
		}
		if len(codes) == 1 {
			var want int32
			for k := range codes {
				want = k
			}
			col := c.codes
			return func(i int) bool { return col[i] == want }, false, false, nil
		}
		// Multi-value IN: a bitset over dictionary codes turns the per-row
		// membership test into one slice index — the hot path of merged
		// query execution.
		member := make([]bool, len(c.dict))
		for k := range codes {
			member[k] = true
		}
		col := c.codes
		return func(i int) bool { return member[col[i]] }, false, false, nil
	case KindInt:
		wants := make(map[int64]struct{}, len(p.Values))
		for _, v := range p.Values {
			switch v.K {
			case KindInt:
				wants[v.I] = struct{}{}
			case KindFloat:
				if v.F == math.Trunc(v.F) {
					wants[int64(v.F)] = struct{}{}
				}
			}
		}
		if len(wants) == 0 {
			return nil, false, true, nil
		}
		if len(wants) == 1 {
			var want int64
			for k := range wants {
				want = k
			}
			col := c.ints
			return func(i int) bool { return col[i] == want }, false, false, nil
		}
		col := c.ints
		return func(i int) bool {
			_, ok := wants[col[i]]
			return ok
		}, false, false, nil
	case KindFloat:
		wants := make([]float64, 0, len(p.Values))
		for _, v := range p.Values {
			if v.K == KindInt || v.K == KindFloat {
				wants = append(wants, v.AsFloat())
			}
		}
		if len(wants) == 0 {
			return nil, false, true, nil
		}
		col := c.floats
		return func(i int) bool {
			x := col[i]
			for _, w := range wants {
				if x == w {
					return true
				}
			}
			return false
		}, false, false, nil
	}
	return nil, false, false, fmt.Errorf("sqldb: predicate on invalid column %q", p.Col)
}

// rowHash is a 64-bit mix (splitmix64 finalizer) used for deterministic
// uniform sampling: row i is in the sample iff hash(i, seed) falls below
// rate * 2^64. The same seed yields the same sample across queries, so the
// approximate multiplot in progressive presentation is internally
// consistent (all plots computed from one sample).
func rowHash(i, seed uint64) uint64 {
	z := i + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// aggState accumulates one aggregate over a row stream.
type aggState struct {
	count int64
	sum   float64
	min   float64
	max   float64
	seen  bool
}

func (s *aggState) add(x float64) {
	s.count++
	s.sum += x
	if !s.seen || x < s.min {
		s.min = x
	}
	if !s.seen || x > s.max {
		s.max = x
	}
	s.seen = true
}

// value renders the final aggregate with sample scaling. COUNT and SUM are
// inflated by the scale factor; AVG, MIN and MAX are scale-free.
func (s *aggState) value(f AggFunc, scale float64) Value {
	switch f {
	case AggCount:
		return Float(float64(s.count) * scale)
	case AggSum:
		if !s.seen {
			return Null()
		}
		return Float(s.sum * scale)
	case AggAvg:
		if s.count == 0 {
			return Null()
		}
		return Float(s.sum / float64(s.count))
	case AggMin:
		if !s.seen {
			return Null()
		}
		return Float(s.min)
	case AggMax:
		if !s.seen {
			return Null()
		}
		return Float(s.max)
	}
	return Null()
}

// numericAccessor returns a float-reading accessor for an aggregate's input
// column, or nil for COUNT(*) which needs no input.
func numericAccessor(t *Table, a Aggregate) func(i int) float64 {
	if a.Col == "" {
		return nil
	}
	c := t.Column(a.Col)
	switch c.Kind {
	case KindInt:
		col := c.ints
		return func(i int) float64 { return float64(col[i]) }
	case KindFloat:
		col := c.floats
		return func(i int) float64 { return col[i] }
	}
	// COUNT over a string column: value is irrelevant, only presence.
	return func(i int) float64 { return 0 }
}

// aggregateRows computes all aggregates over the selected rows.
func aggregateRows(t *Table, aggs []Aggregate, sel []int32, scale float64) []Value {
	states := make([]aggState, len(aggs))
	accs := make([]func(i int) float64, len(aggs))
	for j, a := range aggs {
		accs[j] = numericAccessor(t, a)
	}
	for _, ri := range sel {
		i := int(ri)
		for j := range aggs {
			if accs[j] == nil {
				states[j].count++
				continue
			}
			states[j].add(accs[j](i))
		}
	}
	out := make([]Value, len(aggs))
	for j, a := range aggs {
		out[j] = states[j].value(a.Func, scale)
	}
	return out
}

// groupAggregate computes grouped aggregates. Grouping by a single
// dictionary-encoded string column — the shape every merged MUVE query
// has — takes a fast path that indexes accumulator state directly by
// dictionary code; composite keys fall back to hash aggregation. Output
// rows are sorted by group key for determinism.
func groupAggregate(t *Table, q Query, sel []int32, scale float64) (Result, error) {
	keyCols := make([]*Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		keyCols[i] = t.Column(g)
	}
	if len(keyCols) == 1 && keyCols[0].Kind == KindString {
		return groupAggregateByCode(t, q, keyCols[0], sel, scale)
	}
	accs := make([]func(i int) float64, len(q.Aggs))
	for j, a := range q.Aggs {
		accs[j] = numericAccessor(t, a)
	}
	type group struct {
		key    []Value
		states []aggState
	}
	groups := make(map[string]*group, 64)
	var keyBuf []byte
	for _, ri := range sel {
		i := int(ri)
		keyBuf = keyBuf[:0]
		for _, kc := range keyCols {
			keyBuf = appendKeyPart(keyBuf, kc, i)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			key := make([]Value, len(keyCols))
			for k, kc := range keyCols {
				key[k] = kc.Value(i)
			}
			g = &group{key: key, states: make([]aggState, len(q.Aggs))}
			groups[string(keyBuf)] = g
		}
		for j := range q.Aggs {
			if accs[j] == nil {
				g.states[j].count++
				continue
			}
			g.states[j].add(accs[j](i))
		}
	}
	cols := append(append([]string(nil), q.GroupBy...), aggColNames(q)...)
	res := Result{Cols: cols}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		row := make([]Value, 0, len(g.key)+len(q.Aggs))
		row = append(row, g.key...)
		for j, a := range q.Aggs {
			row = append(row, g.states[j].value(a.Func, scale))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// appendKeyPart serializes one group-key component into the hash key.
func appendKeyPart(buf []byte, c *Column, i int) []byte {
	switch c.Kind {
	case KindString:
		code := c.codes[i]
		buf = append(buf, byte(code), byte(code>>8), byte(code>>16), byte(code>>24), 0xff)
	case KindInt:
		v := uint64(c.ints[i])
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(v>>s))
		}
		buf = append(buf, 0xfe)
	case KindFloat:
		v := math.Float64bits(c.floats[i])
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(v>>s))
		}
		buf = append(buf, 0xfd)
	}
	return buf
}

// aggColNames returns the output column names of the aggregates.
func aggColNames(q Query) []string {
	out := make([]string, len(q.Aggs))
	for i, a := range q.Aggs {
		out[i] = a.String()
	}
	return out
}

// groupAggregateByCode is the single-string-column group-by fast path:
// accumulators live in a dense slice indexed by dictionary code, so the
// per-row cost is an array index instead of key serialization plus a map
// probe.
func groupAggregateByCode(t *Table, q Query, keyCol *Column, sel []int32, scale float64) (Result, error) {
	accs := make([]func(i int) float64, len(q.Aggs))
	for j, a := range q.Aggs {
		accs[j] = numericAccessor(t, a)
	}
	nCodes := len(keyCol.dict)
	nAggs := len(q.Aggs)
	states := make([]aggState, nCodes*nAggs)
	seen := make([]bool, nCodes)
	codes := keyCol.codes
	for _, ri := range sel {
		i := int(ri)
		code := codes[i]
		seen[code] = true
		base := int(code) * nAggs
		for j := 0; j < nAggs; j++ {
			if accs[j] == nil {
				states[base+j].count++
				continue
			}
			states[base+j].add(accs[j](i))
		}
	}
	return emitGroupedResult(q, keyCol, states, seen, scale), nil
}
