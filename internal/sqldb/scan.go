package sqldb

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ScanStats describes the work one or more shared scans performed. The
// serving layer aggregates these per answer and exports them as
// muve_scan_* metrics; zero-valued stats mean no shared scan ran.
type ScanStats struct {
	// Scans is the number of table passes executed.
	Scans int64
	// Rows is the total rows covered by those passes (table rows per
	// scan, regardless of sampling — sampling reduces rows *read*, which
	// the throughput throttle accounts separately).
	Rows int64
	// Batches is the number of vectorized batches processed.
	Batches int64
	// Candidates is the number of candidate aggregates answered.
	Candidates int64
	// Predicates is the total predicate instances across candidates.
	Predicates int64
	// SharedPredicates is the number of distinct predicates actually
	// evaluated; Predicates − SharedPredicates filters were deduplicated.
	SharedPredicates int64
	// SketchHits counts candidate values answered from a precomputed
	// aggregate sketch instead of any scan.
	SketchHits int64
	// SketchBuilds counts sketch constructions (each one sampled scan).
	SketchBuilds int64
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.Scans += o.Scans
	s.Rows += o.Rows
	s.Batches += o.Batches
	s.Candidates += o.Candidates
	s.Predicates += o.Predicates
	s.SharedPredicates += o.SharedPredicates
	s.SketchHits += o.SketchHits
	s.SketchBuilds += o.SketchBuilds
}

// Empty reports whether no scan work was recorded.
func (s ScanStats) Empty() bool { return s == ScanStats{} }

// scanCandidate is one candidate aggregate being accumulated during a
// shared scan.
type scanCandidate struct {
	filters []int // sorted indices into the distinct-filter list
	never   bool  // some predicate can match no row
	acc     func(i int) float64
	agg     Aggregate
	state   aggState
}

// sharedScan evaluates every candidate query — each a single ungrouped
// aggregate over t — in ONE pass over the table. Distinct predicates are
// compiled once and evaluated once per batch into selection bitmaps;
// candidates sharing the same predicate signature share the combined
// bitmap; surviving rows are folded into per-candidate accumulators in
// ascending row order, which makes every aggregate bit-identical to the
// row-at-a-time path (same float additions in the same order, same
// deterministic sample membership).
func sharedScan(t *Table, queries []Query, opt execOptions) ([]Value, ScanStats, error) {
	stats := ScanStats{Scans: 1, Rows: int64(t.NumRows()), Candidates: int64(len(queries))}
	if len(queries) == 0 {
		return nil, ScanStats{}, nil
	}

	// Compile: dedup predicates across candidates by their rendered form
	// (which covers column, operator and constants).
	filterIdx := make(map[string]int)
	var fills []batchFiller
	var nevers []bool
	cands := make([]*scanCandidate, len(queries))
	for qi, q := range queries {
		if err := q.Validate(t); err != nil {
			return nil, ScanStats{}, err
		}
		if len(q.Aggs) != 1 || len(q.GroupBy) != 0 {
			return nil, ScanStats{}, fmt.Errorf("sqldb: shared scan requires single ungrouped aggregates, got %q", q.SQL())
		}
		cand := &scanCandidate{agg: q.Aggs[0], acc: numericAccessor(t, q.Aggs[0])}
		stats.Predicates += int64(len(q.Preds))
		for _, p := range q.Preds {
			key := p.String()
			fi, ok := filterIdx[key]
			if !ok {
				f, _, never, err := compileBatchFilter(t, p)
				if err != nil {
					return nil, ScanStats{}, err
				}
				fi = len(fills)
				filterIdx[key] = fi
				fills = append(fills, f.fill)
				nevers = append(nevers, never)
			}
			if nevers[fi] {
				cand.never = true
			} else {
				cand.filters = append(cand.filters, fi)
			}
		}
		sort.Ints(cand.filters)
		cands[qi] = cand
	}
	stats.SharedPredicates = int64(len(fills))

	// Group candidates by filter signature so each distinct conjunction
	// combines its bitmaps — and walks its surviving rows — exactly once.
	type scanGroup struct {
		filters []int
		members []*scanCandidate
	}
	groupIdx := make(map[string]int)
	var groups []*scanGroup
	for _, cand := range cands {
		if cand.never {
			continue // empty selection; its zero state already renders correctly
		}
		sig := fmt.Sprint(cand.filters)
		gi, ok := groupIdx[sig]
		if !ok {
			gi = len(groups)
			groupIdx[sig] = gi
			groups = append(groups, &scanGroup{filters: cand.filters})
		}
		groups[gi].members = append(groups[gi].members, cand)
	}

	// Only fill bitmaps some live group still references.
	used := make([]bool, len(fills))
	for _, g := range groups {
		for _, fi := range g.filters {
			used[fi] = true
		}
	}

	sampling := opt.sampleRate > 0 && opt.sampleRate < 1
	var threshold uint64
	if sampling {
		// Must match filterRowsRange's expression exactly so both paths
		// agree on sample membership.
		threshold = uint64(opt.sampleRate * float64(math.MaxUint64))
	}

	base := newBitmap(scanBatchRows)
	cur := newBitmap(scanBatchRows)
	filterBms := make([]bitmap, len(fills))
	for fi := range filterBms {
		if used[fi] {
			filterBms[fi] = newBitmap(scanBatchRows)
		}
	}

	rows := t.NumRows()
	for lo := 0; lo < rows; lo += scanBatchRows {
		n := rows - lo
		if n > scanBatchRows {
			n = scanBatchRows
		}
		stats.Batches++
		nWords := (n + 63) / 64
		if sampling {
			fillSample(base, lo, n, opt.sampleSeed, threshold)
		} else {
			base.setAll(n)
		}
		for fi := range filterBms {
			if used[fi] {
				fills[fi](filterBms[fi], lo, n)
			}
		}
		for _, g := range groups {
			sel := base
			if len(g.filters) > 0 {
				cur.copyFrom(base, nWords)
				for _, fi := range g.filters {
					cur.and(filterBms[fi], nWords)
				}
				sel = cur
			}
			members := g.members
			sel.forEach(n, func(k int) {
				i := lo + k
				for _, m := range members {
					if m.acc == nil {
						m.state.count++
					} else {
						m.state.add(m.acc(i))
					}
				}
			})
		}
	}

	scale := 1.0
	if sampling {
		scale = 1 / opt.sampleRate
	}
	out := make([]Value, len(queries))
	for qi, cand := range cands {
		out[qi] = cand.state.value(cand.agg.Func, scale)
	}
	return out, stats, nil
}

// ExecShared evaluates a set of single-aggregate ungrouped queries, all
// against the same table, in one shared table pass and returns one
// scalar Value per query (positionally). This is the cross-candidate
// generalization of the paper's query merging: merging batches only
// same-template candidates into IN + GROUP BY, while the shared scan
// feeds arbitrary candidate aggregates — different functions, columns
// and predicates — from a single scan's worth of data movement.
func (db *DB) ExecShared(queries []Query) ([]Value, ScanStats, error) {
	return db.execShared(queries, 0, 0)
}

// ExecSharedSampled is ExecShared over the deterministic uniform sample
// with the given rate in (0, 1]; COUNT and SUM are scaled, and sample
// membership matches ExecSampled for the same seed, so approximate
// shared-scan answers agree bit-for-bit with per-query sampled answers.
func (db *DB) ExecSharedSampled(queries []Query, rate float64, seed uint64) ([]Value, ScanStats, error) {
	if rate <= 0 || rate > 1 {
		return nil, ScanStats{}, fmt.Errorf("sqldb: sample rate %v outside (0, 1]", rate)
	}
	return db.execShared(queries, rate, seed)
}

func (db *DB) execShared(queries []Query, rate float64, seed uint64) ([]Value, ScanStats, error) {
	if len(queries) == 0 {
		return nil, ScanStats{}, nil
	}
	name := queries[0].Table
	for _, q := range queries[1:] {
		if q.Table != name {
			return nil, ScanStats{}, fmt.Errorf("sqldb: shared scan spans tables %q and %q", name, q.Table)
		}
	}
	t, err := db.Table(name)
	if err != nil {
		return nil, ScanStats{}, err
	}
	start := time.Now()
	vals, stats, err := sharedScan(t, queries, execOptions{sampleRate: rate, sampleSeed: seed})
	// The whole point: one scan's worth of data movement feeds every
	// candidate, so the throughput model charges the table ONCE — not
	// once per query like the row-at-a-time path.
	effective := float64(t.NumRows())
	if rate > 0 && rate < 1 {
		effective *= rate
	}
	db.throttle(start, effective)
	return vals, stats, err
}
