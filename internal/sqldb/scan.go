package sqldb

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ScanStats describes the work one or more shared scans performed. The
// serving layer aggregates these per answer and exports them as
// muve_scan_* metrics; zero-valued stats mean no shared scan ran.
type ScanStats struct {
	// Scans is the number of table passes executed.
	Scans int64
	// Rows is the total rows covered by those passes (table rows per
	// scan, regardless of sampling — sampling reduces rows *read*, which
	// the throughput throttle accounts separately).
	Rows int64
	// Batches is the number of vectorized batches processed.
	Batches int64
	// Candidates is the number of candidate aggregates answered.
	Candidates int64
	// Predicates is the total predicate instances across candidates.
	Predicates int64
	// SharedPredicates is the number of distinct predicates actually
	// evaluated; Predicates − SharedPredicates filters were deduplicated.
	SharedPredicates int64
	// Groups is the total output groups emitted for grouped candidates
	// (zero when every candidate was ungrouped).
	Groups int64
	// Aggregates is the total aggregate accumulators maintained across
	// candidates; Aggregates − Candidates counts the extra aggregates
	// multi-aggregate candidates rode along for free.
	Aggregates int64
	// SketchHits counts candidate values answered from a precomputed
	// aggregate sketch instead of any scan.
	SketchHits int64
	// SketchBuilds counts sketch constructions (each one sampled scan).
	SketchBuilds int64
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.Scans += o.Scans
	s.Rows += o.Rows
	s.Batches += o.Batches
	s.Candidates += o.Candidates
	s.Predicates += o.Predicates
	s.SharedPredicates += o.SharedPredicates
	s.Groups += o.Groups
	s.Aggregates += o.Aggregates
	s.SketchHits += o.SketchHits
	s.SketchBuilds += o.SketchBuilds
}

// Empty reports whether no scan work was recorded.
func (s ScanStats) Empty() bool { return s == ScanStats{} }

// scanCandidate is one candidate query being accumulated during a
// shared scan. Ungrouped candidates keep one aggState per aggregate in
// `states`; a single-string-column GROUP BY — the shape every merged
// MUVE query and trend query has — keeps a dense states slice indexed
// directly by dictionary code (states[code*nAggs+j]); composite group
// keys fall back to hash aggregation, mirroring groupAggregate.
type scanCandidate struct {
	filters []int // sorted indices into the distinct-filter list
	never   bool  // some predicate can match no row
	q       Query
	accs    []func(i int) float64
	nAggs   int

	// Flat accumulator storage: ungrouped (len nAggs) or dictionary-code
	// indexed (len nCodes*nAggs, keyCol non-nil).
	states []aggState
	keyCol *Column
	seen   []bool

	// Composite-key fallback (keyCols non-nil).
	keyCols []*Column
	hashed  map[string]*hashedGroup
	keyBuf  []byte
}

// hashedGroup is one composite group's accumulator tuple.
type hashedGroup struct {
	key    []Value
	states []aggState
}

// newScanCandidate sets up accumulator storage for one validated query.
func newScanCandidate(t *Table, q Query) *scanCandidate {
	c := &scanCandidate{q: q, nAggs: len(q.Aggs)}
	c.accs = make([]func(i int) float64, c.nAggs)
	for j, a := range q.Aggs {
		c.accs[j] = numericAccessor(t, a)
	}
	switch {
	case len(q.GroupBy) == 0:
		c.states = make([]aggState, c.nAggs)
	case len(q.GroupBy) == 1 && t.Column(q.GroupBy[0]).Kind == KindString:
		c.keyCol = t.Column(q.GroupBy[0])
		c.states = make([]aggState, len(c.keyCol.dict)*c.nAggs)
		c.seen = make([]bool, len(c.keyCol.dict))
	default:
		c.keyCols = make([]*Column, len(q.GroupBy))
		for k, g := range q.GroupBy {
			c.keyCols[k] = t.Column(g)
		}
		c.hashed = make(map[string]*hashedGroup, 64)
	}
	return c
}

// fold accumulates row i into the candidate's aggregates. Rows arrive
// in ascending order, so every group's accumulator sees exactly the
// float additions — in exactly the order — the row-at-a-time path
// performs for that group.
func (c *scanCandidate) fold(i int) {
	states := c.states
	switch {
	case c.keyCol != nil:
		code := c.keyCol.codes[i]
		c.seen[code] = true
		states = c.states[int(code)*c.nAggs : (int(code)+1)*c.nAggs]
	case c.keyCols != nil:
		c.keyBuf = c.keyBuf[:0]
		for _, kc := range c.keyCols {
			c.keyBuf = appendKeyPart(c.keyBuf, kc, i)
		}
		g, ok := c.hashed[string(c.keyBuf)]
		if !ok {
			key := make([]Value, len(c.keyCols))
			for k, kc := range c.keyCols {
				key[k] = kc.Value(i)
			}
			g = &hashedGroup{key: key, states: make([]aggState, c.nAggs)}
			c.hashed[string(c.keyBuf)] = g
		}
		states = g.states
	}
	for j := 0; j < c.nAggs; j++ {
		if c.accs[j] == nil {
			states[j].count++
		} else {
			states[j].add(c.accs[j](i))
		}
	}
}

// groupCount returns the number of output groups a grouped candidate
// produced (zero for ungrouped candidates).
func (c *scanCandidate) groupCount() int64 {
	switch {
	case c.keyCol != nil:
		var n int64
		for _, ok := range c.seen {
			if ok {
				n++
			}
		}
		return n
	case c.keyCols != nil:
		return int64(len(c.hashed))
	}
	return 0
}

// result renders the candidate's final Result, matching the
// row-at-a-time executor's shape and ordering exactly: ungrouped
// candidates emit one row; dictionary-code groups emit in dictionary
// string order (emitGroupedResult); composite groups emit sorted by
// their serialized key, like groupAggregate.
func (c *scanCandidate) result(scale float64) Result {
	switch {
	case c.keyCol != nil:
		return emitGroupedResult(c.q, c.keyCol, c.states, c.seen, scale)
	case c.keyCols != nil:
		cols := append(append([]string(nil), c.q.GroupBy...), aggColNames(c.q)...)
		res := Result{Cols: cols}
		keys := make([]string, 0, len(c.hashed))
		for k := range c.hashed {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := c.hashed[k]
			row := make([]Value, 0, len(g.key)+c.nAggs)
			row = append(row, g.key...)
			for j, a := range c.q.Aggs {
				row = append(row, g.states[j].value(a.Func, scale))
			}
			res.Rows = append(res.Rows, row)
		}
		return res
	default:
		row := make([]Value, c.nAggs)
		for j, a := range c.q.Aggs {
			row[j] = c.states[j].value(a.Func, scale)
		}
		return Result{Cols: aggColNames(c.q), Rows: [][]Value{row}}
	}
}

// sharedScan evaluates every candidate query over t — any mix of
// ungrouped, grouped and multi-aggregate shapes — in ONE pass over the
// table. Distinct predicates are compiled once and evaluated once per
// batch into selection bitmaps; candidates sharing the same predicate
// signature share the combined bitmap; surviving rows are folded into
// per-candidate accumulators in ascending row order, which makes every
// result bit-identical to the row-at-a-time path (same float additions
// in the same order, same deterministic sample membership, same group
// output order by construction: ascending batches, ascending set bits,
// and group emission ordered exactly as the serial executor orders it).
func sharedScan(t *Table, queries []Query, opt execOptions) ([]Result, ScanStats, error) {
	stats := ScanStats{Scans: 1, Rows: int64(t.NumRows()), Candidates: int64(len(queries))}
	if len(queries) == 0 {
		return nil, ScanStats{}, nil
	}

	// Compile: dedup predicates across candidates by their rendered form
	// (which covers column, operator and constants).
	filterIdx := make(map[string]int)
	var fills []batchFiller
	var nevers []bool
	cands := make([]*scanCandidate, len(queries))
	for qi, q := range queries {
		if err := q.Validate(t); err != nil {
			return nil, ScanStats{}, err
		}
		cand := newScanCandidate(t, q)
		stats.Predicates += int64(len(q.Preds))
		stats.Aggregates += int64(len(q.Aggs))
		for _, p := range q.Preds {
			key := p.String()
			fi, ok := filterIdx[key]
			if !ok {
				f, _, never, err := compileBatchFilter(t, p)
				if err != nil {
					return nil, ScanStats{}, err
				}
				fi = len(fills)
				filterIdx[key] = fi
				fills = append(fills, f.fill)
				nevers = append(nevers, never)
			}
			if nevers[fi] {
				cand.never = true
			} else {
				cand.filters = append(cand.filters, fi)
			}
		}
		sort.Ints(cand.filters)
		cands[qi] = cand
	}
	stats.SharedPredicates = int64(len(fills))

	// Group candidates by filter signature so each distinct conjunction
	// combines its bitmaps — and walks its surviving rows — exactly once.
	type scanGroup struct {
		filters []int
		members []*scanCandidate
	}
	groupIdx := make(map[string]int)
	var groups []*scanGroup
	for _, cand := range cands {
		if cand.never {
			continue // empty selection; its zero state already renders correctly
		}
		sig := fmt.Sprint(cand.filters)
		gi, ok := groupIdx[sig]
		if !ok {
			gi = len(groups)
			groupIdx[sig] = gi
			groups = append(groups, &scanGroup{filters: cand.filters})
		}
		groups[gi].members = append(groups[gi].members, cand)
	}

	// Only fill bitmaps some live group still references.
	used := make([]bool, len(fills))
	for _, g := range groups {
		for _, fi := range g.filters {
			used[fi] = true
		}
	}

	sampling := opt.sampleRate > 0 && opt.sampleRate < 1
	var threshold uint64
	if sampling {
		// Must match filterRowsRange's expression exactly so both paths
		// agree on sample membership.
		threshold = uint64(opt.sampleRate * float64(math.MaxUint64))
	}

	base := newBitmap(scanBatchRows)
	cur := newBitmap(scanBatchRows)
	filterBms := make([]bitmap, len(fills))
	for fi := range filterBms {
		if used[fi] {
			filterBms[fi] = newBitmap(scanBatchRows)
		}
	}

	rows := t.NumRows()
	for lo := 0; lo < rows; lo += scanBatchRows {
		n := rows - lo
		if n > scanBatchRows {
			n = scanBatchRows
		}
		stats.Batches++
		nWords := (n + 63) / 64
		if sampling {
			fillSample(base, lo, n, opt.sampleSeed, threshold)
		} else {
			base.setAll(n)
		}
		for fi := range filterBms {
			if used[fi] {
				fills[fi](filterBms[fi], lo, n)
			}
		}
		for _, g := range groups {
			sel := base
			if len(g.filters) > 0 {
				cur.copyFrom(base, nWords)
				for _, fi := range g.filters {
					cur.and(filterBms[fi], nWords)
				}
				sel = cur
			}
			members := g.members
			sel.forEach(n, func(k int) {
				i := lo + k
				for _, m := range members {
					m.fold(i)
				}
			})
		}
	}

	scale := 1.0
	if sampling {
		scale = 1 / opt.sampleRate
	}
	out := make([]Result, len(queries))
	for qi, cand := range cands {
		out[qi] = cand.result(scale)
		stats.Groups += cand.groupCount()
	}
	return out, stats, nil
}

// ExecSharedResults evaluates a set of queries of any supported shape —
// ungrouped or grouped, single- or multi-aggregate — all against the
// same table, in one shared table pass, and returns one full Result per
// query (positionally). This is the cross-candidate generalization of
// the paper's query merging: merging batches only same-template
// candidates into IN + GROUP BY, while the shared scan feeds arbitrary
// candidate shapes — different functions, columns, predicates, group
// keys and aggregate counts — from a single scan's worth of data
// movement.
func (db *DB) ExecSharedResults(queries []Query) ([]Result, ScanStats, error) {
	return db.execShared(queries, 0, 0)
}

// ExecSharedResultsSampled is ExecSharedResults over the deterministic
// uniform sample with the given rate in (0, 1]; COUNT and SUM are
// scaled, and sample membership matches ExecSampled for the same seed,
// so approximate shared-scan answers agree bit-for-bit with per-query
// sampled answers.
func (db *DB) ExecSharedResultsSampled(queries []Query, rate float64, seed uint64) ([]Result, ScanStats, error) {
	if rate <= 0 || rate > 1 {
		return nil, ScanStats{}, fmt.Errorf("sqldb: sample rate %v outside (0, 1]", rate)
	}
	return db.execShared(queries, rate, seed)
}

// ExecShared evaluates a set of single-aggregate ungrouped queries, all
// against the same table, in one shared table pass and returns one
// scalar Value per query (positionally). It is the scalar convenience
// form of ExecSharedResults for the multiplot candidate class.
func (db *DB) ExecShared(queries []Query) ([]Value, ScanStats, error) {
	if err := requireScalar(queries); err != nil {
		return nil, ScanStats{}, err
	}
	res, stats, err := db.execShared(queries, 0, 0)
	return scalars(res), stats, err
}

// ExecSharedSampled is ExecShared over the deterministic uniform sample
// with the given rate in (0, 1].
func (db *DB) ExecSharedSampled(queries []Query, rate float64, seed uint64) ([]Value, ScanStats, error) {
	if err := requireScalar(queries); err != nil {
		return nil, ScanStats{}, err
	}
	if rate <= 0 || rate > 1 {
		return nil, ScanStats{}, fmt.Errorf("sqldb: sample rate %v outside (0, 1]", rate)
	}
	res, stats, err := db.execShared(queries, rate, seed)
	return scalars(res), stats, err
}

// requireScalar guards the scalar ExecShared entry points.
func requireScalar(queries []Query) error {
	for _, q := range queries {
		if len(q.Aggs) != 1 || len(q.GroupBy) != 0 {
			return fmt.Errorf("sqldb: ExecShared requires single ungrouped aggregates, got %q (use ExecSharedResults)", q.SQL())
		}
	}
	return nil
}

// scalars extracts the single value of each scalar result.
func scalars(res []Result) []Value {
	if res == nil {
		return nil
	}
	out := make([]Value, len(res))
	for i, r := range res {
		out[i] = r.Rows[0][0]
	}
	return out
}

func (db *DB) execShared(queries []Query, rate float64, seed uint64) ([]Result, ScanStats, error) {
	if len(queries) == 0 {
		return nil, ScanStats{}, nil
	}
	name := queries[0].Table
	for _, q := range queries[1:] {
		if q.Table != name {
			return nil, ScanStats{}, fmt.Errorf("sqldb: shared scan spans tables %q and %q", name, q.Table)
		}
	}
	t, err := db.Table(name)
	if err != nil {
		return nil, ScanStats{}, err
	}
	start := time.Now()
	res, stats, err := sharedScan(t, queries, execOptions{sampleRate: rate, sampleSeed: seed})
	// The whole point: one scan's worth of data movement feeds every
	// candidate, so the throughput model charges the table ONCE — not
	// once per query like the row-at-a-time path.
	effective := float64(t.NumRows())
	if rate > 0 && rate < 1 {
		effective *= rate
	}
	db.throttle(start, effective)
	return res, stats, err
}
