package sqldb

import (
	"math"
	"strings"
	"testing"
)

// bigTable builds a table with a known exact aggregate for sampling tests.
func bigTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl, err := NewTable("big",
		ColumnDef{"grp", KindString},
		ColumnDef{"x", KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(Str(groups[i%len(groups)]), Float(float64(i%100))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestExecSampledScalesCountAndSum(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 40000))
	exactCount, _ := db.Query("SELECT count(*) FROM big")
	exactSum, _ := db.Query("SELECT sum(x) FROM big")
	wantCount, _ := exactCount.Scalar()
	wantSum, _ := exactSum.Scalar()
	for _, rate := range []float64{0.01, 0.05, 0.2} {
		res, err := db.ExecSampled(MustParse("SELECT count(*) FROM big"), rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := res.Scalar()
		if rel := math.Abs(got-wantCount) / wantCount; rel > 0.15 {
			t.Errorf("rate %v count rel err = %v", rate, rel)
		}
		res, err = db.ExecSampled(MustParse("SELECT sum(x) FROM big"), rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, _ = res.Scalar()
		if rel := math.Abs(got-wantSum) / wantSum; rel > 0.15 {
			t.Errorf("rate %v sum rel err = %v", rate, rel)
		}
	}
}

func TestExecSampledAvgUnscaled(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 40000))
	exact, _ := db.Query("SELECT avg(x) FROM big")
	want, _ := exact.Scalar()
	res, err := db.ExecSampled(MustParse("SELECT avg(x) FROM big"), 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Scalar()
	if math.Abs(got-want) > 5 {
		t.Errorf("sampled avg = %v, want ~%v", got, want)
	}
}

func TestExecSampledDeterministic(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 10000))
	q := MustParse("SELECT count(*) FROM big WHERE grp = 'a'")
	a, _ := db.ExecSampled(q, 0.1, 42)
	b, _ := db.ExecSampled(q, 0.1, 42)
	va, _ := a.Scalar()
	vb, _ := b.Scalar()
	if va != vb {
		t.Error("same seed should give same sample")
	}
	c, _ := db.ExecSampled(q, 0.1, 43)
	vc, _ := c.Scalar()
	// Different seeds *may* coincide but should usually differ; only warn
	// through failure if the sample mechanism is obviously ignoring seeds.
	d, _ := db.ExecSampled(q, 0.1, 44)
	vd, _ := d.Scalar()
	if va == vc && va == vd {
		t.Error("sampling appears to ignore the seed")
	}
}

func TestExecSampledRate1MatchesExact(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 5000))
	q := MustParse("SELECT sum(x) FROM big WHERE grp IN ('a','b')")
	exact, _ := db.Exec(q)
	sampled, err := db.ExecSampled(q, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ve, _ := exact.Scalar()
	vs, _ := sampled.Scalar()
	if ve != vs {
		t.Errorf("rate 1.0 sampled = %v, exact = %v", vs, ve)
	}
}

func TestExecSampledBadRate(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 100))
	for _, rate := range []float64{0, -0.5, 1.5} {
		if _, err := db.ExecSampled(MustParse("SELECT count(*) FROM big"), rate, 1); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestEstimateCostSelectivity(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 10000)) // grp has 4 distinct values
	base, err := db.EstimateCost(MustParse("SELECT count(*) FROM big"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Selectivity != 1 || base.Rows != 10000 {
		t.Errorf("base estimate = %+v", base)
	}
	eq, _ := db.EstimateCost(MustParse("SELECT count(*) FROM big WHERE grp = 'a'"))
	if math.Abs(eq.Selectivity-0.25) > 1e-9 {
		t.Errorf("eq selectivity = %v, want 0.25", eq.Selectivity)
	}
	in, _ := db.EstimateCost(MustParse("SELECT count(*) FROM big WHERE grp IN ('a','b')"))
	if math.Abs(in.Selectivity-0.5) > 1e-9 {
		t.Errorf("IN selectivity = %v, want 0.5", in.Selectivity)
	}
	// Cost grows with predicate terms but one merged query is cheaper than
	// two separate ones — the whole premise of query merging.
	sep := 2 * eq.TotalCost
	if in.TotalCost >= sep {
		t.Errorf("merged cost %v should beat separate %v", in.TotalCost, sep)
	}
}

func TestEstimateCostGrowsWithRows(t *testing.T) {
	small := NewDB()
	small.Register(bigTable(t, 1000))
	large := NewDB()
	large.Register(bigTable(t, 100000))
	q := MustParse("SELECT sum(x) FROM big WHERE grp = 'a'")
	cs, _ := small.EstimateCost(q)
	cl, _ := large.EstimateCost(q)
	if cl.TotalCost <= cs.TotalCost {
		t.Errorf("cost should grow with data: %v vs %v", cs.TotalCost, cl.TotalCost)
	}
}

func TestEstimateCostErrors(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 10))
	if _, err := db.EstimateCost(MustParse("SELECT count(*) FROM nope")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.EstimateCost(MustParse("SELECT sum(grp) FROM big")); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestExplainOutput(t *testing.T) {
	db := NewDB()
	db.Register(bigTable(t, 1000))
	plan, err := db.Explain(MustParse("SELECT sum(x) FROM big WHERE grp = 'a'"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Aggregate", "Seq Scan on big", "Filter: (grp = 'a')", "cost="} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	plan, err = db.Explain(MustParse("SELECT sum(x), grp FROM big GROUP BY grp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashAggregate") {
		t.Errorf("grouped plan missing HashAggregate:\n%s", plan)
	}
}

func TestDBTableManagement(t *testing.T) {
	db := NewDB()
	if _, err := db.Table("x"); err == nil {
		t.Error("missing table should error")
	}
	db.Register(bigTable(t, 10))
	names := db.TableNames()
	if len(names) != 1 || names[0] != "big" {
		t.Errorf("TableNames = %v", names)
	}
	if _, err := db.Query("SELECT count(* FROM big"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	csvData := "city,pop,area\nNYC,8000000,300.5\nLA,4000000,500.25\nSF,800000,47\n"
	tbl, err := LoadCSV("cities", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Column("city").Kind != KindString ||
		tbl.Column("pop").Kind != KindInt ||
		tbl.Column("area").Kind != KindFloat {
		t.Error("kind inference wrong")
	}
	db := NewDB()
	db.Register(tbl)
	res, err := db.Query("SELECT sum(pop) FROM cities WHERE city IN ('NYC','LA')")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Scalar(); v != 12000000 {
		t.Errorf("sum = %v", v)
	}
	var sb strings.Builder
	if err := WriteCSV(tbl, &sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("cities", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Error("round trip lost rows")
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for j := range tbl.Columns() {
			if !tbl.Row(i)[j].Equal(back.Row(i)[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, tbl.Row(i)[j], back.Row(i)[j])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                // no header
		"a,b\n",           // header only
		"a,b\n1,2\n3\n",   // ragged row
		"a,b\n1,2\nx,3\n", // type break in later row
	}
	for _, data := range cases {
		if _, err := LoadCSV("t", strings.NewReader(data)); err == nil {
			t.Errorf("LoadCSV(%q) should fail", data)
		}
	}
}

func TestColumnDistincts(t *testing.T) {
	tbl := bigTable(t, 400)
	if got := tbl.Column("grp").DistinctCount(); got != 4 {
		t.Errorf("distinct grp = %d", got)
	}
	if got := tbl.Column("x").DistinctCount(); got != 100 {
		t.Errorf("distinct x = %d", got)
	}
	ds := tbl.Column("grp").DistinctStrings()
	if len(ds) != 4 || ds[0] != "a" || ds[3] != "d" {
		t.Errorf("DistinctStrings = %v", ds)
	}
	if tbl.Column("x").DistinctStrings() != nil {
		t.Error("numeric DistinctStrings should be nil")
	}
	// Cached stats refresh after mutation.
	if got := tbl.DistinctCount("grp"); got != 4 {
		t.Errorf("cached distinct = %d", got)
	}
	if err := tbl.AppendRow(Str("zz"), Float(1)); err != nil {
		t.Fatal(err)
	}
	if got := tbl.DistinctCount("grp"); got != 5 {
		t.Errorf("distinct after append = %d, want 5", got)
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("t"); err == nil {
		t.Error("zero-column table accepted")
	}
	if _, err := NewTable("t", ColumnDef{"a", KindInt}, ColumnDef{"a", KindFloat}); err == nil {
		t.Error("duplicate column accepted")
	}
}
