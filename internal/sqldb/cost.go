package sqldb

import (
	"fmt"
	"strings"
)

// Cost-model parameters, mirroring the Postgres planner's sequential-scan
// cost structure (seq_page_cost, cpu_tuple_cost, cpu_operator_cost). The
// absolute values are Postgres' defaults; only relative magnitudes matter
// for MUVE's merge decisions.
const (
	costSeqPage     = 1.0    // per page read
	costCPUTuple    = 0.01   // per tuple processed
	costCPUOperator = 0.0025 // per operator/predicate evaluation
	costStartup     = 0.0    // seq scans have no startup cost
	tuplesPerPage   = 100.0  // rows per (synthetic) page
)

// CostEstimate is the planner's estimate for executing one query, in the
// same abstract units Postgres uses (arbitrary "cost units" where reading
// one page sequentially costs 1).
type CostEstimate struct {
	// StartupCost before the first row can be produced.
	StartupCost float64
	// TotalCost for running the query to completion.
	TotalCost float64
	// Rows the planner expects the scan to feed into the aggregate.
	Rows float64
	// Selectivity is the combined predicate selectivity in [0, 1].
	Selectivity float64
}

// EstimateCost estimates the execution cost of q against the database using
// table statistics, mirroring `EXPLAIN` estimates the paper obtains from
// Postgres (Section 8.1) to weigh query-merging decisions.
//
// Model: an aggregation over a sequential scan costs
//
//	pages*seq_page_cost + rows*cpu_tuple_cost
//	  + rows*#predicate-terms*cpu_operator_cost   (filter evaluation)
//	  + selRows*#aggregates*cpu_operator_cost     (aggregate transition)
//
// Predicate selectivity uses the standard 1/distinct(col) estimate for
// equality and |values|/distinct(col) for IN, assuming independence across
// conjuncts — exactly the Postgres default without extended statistics.
func (db *DB) EstimateCost(q Query) (CostEstimate, error) {
	t, err := db.Table(q.Table)
	if err != nil {
		return CostEstimate{}, err
	}
	if err := q.Validate(t); err != nil {
		return CostEstimate{}, err
	}
	rows := float64(t.NumRows())
	pages := rows / tuplesPerPage
	sel := 1.0
	predTerms := 0
	for _, p := range q.Preds {
		d := float64(t.DistinctCount(p.Col))
		if d < 1 {
			d = 1
		}
		frac := float64(len(p.Values)) / d
		if frac > 1 {
			frac = 1
		}
		sel *= frac
		predTerms += len(p.Values)
	}
	selRows := rows * sel
	groupOps := float64(len(q.GroupBy))
	total := costStartup +
		pages*costSeqPage +
		rows*costCPUTuple +
		rows*float64(predTerms)*costCPUOperator +
		selRows*(float64(len(q.Aggs))+groupOps)*costCPUOperator
	return CostEstimate{
		StartupCost: costStartup,
		TotalCost:   total,
		Rows:        selRows,
		Selectivity: sel,
	}, nil
}

// Explain renders a Postgres-style plan description with cost estimates,
// e.g.:
//
//	Aggregate  (cost=0.00..1834.50 rows=1)
//	  ->  Seq Scan on flights  (cost=0.00..1809.00 rows=1200)
//	        Filter: (origin = 'JFK')
func (db *DB) Explain(q Query) (string, error) {
	est, err := db.EstimateCost(q)
	if err != nil {
		return "", err
	}
	t, _ := db.Table(q.Table)
	rows := float64(t.NumRows())
	scanCost := rows/tuplesPerPage*costSeqPage + rows*costCPUTuple
	var b strings.Builder
	node := "Aggregate"
	outRows := 1.0
	if len(q.GroupBy) > 0 {
		node = "HashAggregate"
		outRows = est.Rows // upper bound; group count unknown without histograms
		for _, g := range q.GroupBy {
			if d := float64(t.DistinctCount(g)); d < outRows {
				outRows = d
			}
		}
	}
	fmt.Fprintf(&b, "%s  (cost=%.2f..%.2f rows=%.0f)\n", node, est.StartupCost, est.TotalCost, outRows)
	fmt.Fprintf(&b, "  ->  Seq Scan on %s  (cost=0.00..%.2f rows=%.0f)\n", q.Table, scanCost, est.Rows)
	if len(q.Preds) > 0 {
		parts := make([]string, len(q.Preds))
		for i, p := range q.Preds {
			parts[i] = "(" + p.String() + ")"
		}
		fmt.Fprintf(&b, "        Filter: %s\n", strings.Join(parts, " AND "))
	}
	return b.String(), nil
}
