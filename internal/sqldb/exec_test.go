package sqldb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// testTable builds a small flights-like table used across executor tests.
func testTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("flights",
		ColumnDef{"origin", KindString},
		ColumnDef{"carrier", KindString},
		ColumnDef{"delay", KindFloat},
		ColumnDef{"year", KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		origin, carrier string
		delay           float64
		year            int64
	}{
		{"JFK", "AA", 10, 2007},
		{"JFK", "DL", 20, 2008},
		{"LGA", "AA", -5, 2008},
		{"LGA", "DL", 15, 2007},
		{"EWR", "AA", 0, 2008},
		{"JFK", "AA", 30, 2008},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(Str(r.origin), Str(r.carrier), Float(r.delay), Int(r.year)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func testDB(t *testing.T) *DB {
	db := NewDB()
	db.Register(testTable(t))
	return db
}

func scalar(t *testing.T, db *DB, sql string) float64 {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return v
}

func TestExecAggregates(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT count(*) FROM flights", 6},
		{"SELECT count(*) FROM flights WHERE origin = 'JFK'", 3},
		{"SELECT sum(delay) FROM flights WHERE origin = 'JFK'", 60},
		{"SELECT avg(delay) FROM flights WHERE origin = 'JFK'", 20},
		{"SELECT min(delay) FROM flights", -5},
		{"SELECT max(delay) FROM flights", 30},
		{"SELECT count(*) FROM flights WHERE origin = 'JFK' AND year = 2008", 2},
		{"SELECT count(*) FROM flights WHERE origin IN ('JFK', 'LGA')", 5},
		{"SELECT avg(year) FROM flights WHERE carrier = 'DL'", 2007.5},
		{"SELECT count(carrier) FROM flights WHERE delay = 0", 1},
	}
	for _, c := range cases {
		if got := scalar(t, db, c.sql); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestExecEmptyMatchSemantics(t *testing.T) {
	db := testDB(t)
	// COUNT over empty selection is 0.
	if got := scalar(t, db, "SELECT count(*) FROM flights WHERE origin = 'SFO'"); got != 0 {
		t.Errorf("count = %v", got)
	}
	// SUM/AVG/MIN/MAX over empty selection are NULL.
	for _, agg := range []string{"sum(delay)", "avg(delay)", "min(delay)", "max(delay)"} {
		res, err := db.Query("SELECT " + agg + " FROM flights WHERE origin = 'SFO'")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rows[0][0].IsNull() {
			t.Errorf("%s over empty = %v, want NULL", agg, res.Rows[0][0])
		}
		if _, err := res.Scalar(); err == nil {
			t.Errorf("Scalar over NULL %s should error", agg)
		}
	}
}

func TestExecGroupBy(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT avg(delay), origin FROM flights GROUP BY origin")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	want := map[string]float64{"JFK": 20, "LGA": 5, "EWR": 0}
	for _, row := range res.Rows {
		origin := row[0].S
		got := row[1].AsFloat()
		if math.Abs(got-want[origin]) > 1e-9 {
			t.Errorf("avg(delay) for %s = %v, want %v", origin, got, want[origin])
		}
	}
	// Grouped output is deterministic across runs.
	res2, _ := db.Query("SELECT avg(delay), origin FROM flights GROUP BY origin")
	for i := range res.Rows {
		if res.Rows[i][0] != res2.Rows[i][0] {
			t.Fatal("group order not deterministic")
		}
	}
}

func TestExecGroupByMultipleKeysAndAggs(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT count(*), sum(delay), origin, carrier FROM flights GROUP BY origin, carrier")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 4 {
		t.Fatalf("cols = %v", res.Cols)
	}
	// (JFK, AA) has 2 rows with delays 10+30.
	found := false
	for _, row := range res.Rows {
		if row[0].S == "JFK" && row[1].S == "AA" {
			found = true
			if row[2].AsFloat() != 2 || row[3].AsFloat() != 40 {
				t.Errorf("JFK/AA row = %v", row)
			}
		}
	}
	if !found {
		t.Error("missing JFK/AA group")
	}
}

func TestExecMergedQueryEquivalence(t *testing.T) {
	// The merged form (IN + GROUP BY) must agree with separate queries —
	// the core guarantee behind MUVE's query merging (Section 8.1).
	db := testDB(t)
	sep := map[string]float64{
		"JFK": scalar(t, db, "SELECT sum(delay) FROM flights WHERE origin = 'JFK'"),
		"LGA": scalar(t, db, "SELECT sum(delay) FROM flights WHERE origin = 'LGA'"),
	}
	res, err := db.Query("SELECT sum(delay), origin FROM flights WHERE origin IN ('JFK','LGA') GROUP BY origin")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if got, want := row[1].AsFloat(), sep[row[0].S]; math.Abs(got-want) > 1e-9 {
			t.Errorf("merged %s = %v, want %v", row[0].S, got, want)
		}
	}
}

func TestExecValidationErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT count(*) FROM nope",
		"SELECT sum(origin) FROM flights", // sum over TEXT
		"SELECT sum(nope) FROM flights",   // unknown agg column
		"SELECT count(*) FROM flights WHERE nope = 1",
		"SELECT count(*), nope FROM flights GROUP BY nope",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%s should fail", sql)
		}
	}
	// Duplicate GROUP BY columns are rejected at validation.
	q := MustParse("SELECT count(*), origin FROM flights GROUP BY origin, origin")
	if _, err := db.Exec(q); err == nil {
		t.Error("duplicate GROUP BY should fail")
	}
}

func TestExecPredicateTypeMismatches(t *testing.T) {
	db := testDB(t)
	// String literal against numeric column matches nothing.
	if got := scalar(t, db, "SELECT count(*) FROM flights WHERE year = 'JFK'"); got != 0 {
		t.Errorf("mismatched predicate matched %v rows", got)
	}
	// Integer literal against float column matches numerically.
	if got := scalar(t, db, "SELECT count(*) FROM flights WHERE delay = 0"); got != 1 {
		t.Errorf("int-against-float = %v", got)
	}
	// Float literal with integral value matches int column.
	if got := scalar(t, db, "SELECT count(*) FROM flights WHERE year = 2008.0"); got != 4 {
		t.Errorf("float-against-int = %v", got)
	}
	// Non-integral float never matches an int column.
	if got := scalar(t, db, "SELECT count(*) FROM flights WHERE year = 2008.5"); got != 0 {
		t.Errorf("fractional-against-int = %v", got)
	}
}

// referenceExecute is a deliberately naive row-at-a-time evaluator used to
// differential-test the columnar executor.
func referenceExecute(tbl *Table, q Query) map[string][]float64 {
	groups := make(map[string][]float64) // key -> per-agg accumulator state via recompute
	rowsByKey := make(map[string][]int)
	for i := 0; i < tbl.NumRows(); i++ {
		match := true
		for _, p := range q.Preds {
			v := tbl.Column(p.Col).Value(i)
			any := false
			for _, w := range p.Values {
				if v.Equal(w) {
					any = true
					break
				}
			}
			if !any {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		key := ""
		for _, g := range q.GroupBy {
			key += tbl.Column(g).Value(i).Display() + "\x00"
		}
		rowsByKey[key] = append(rowsByKey[key], i)
	}
	if len(q.GroupBy) == 0 && len(rowsByKey) == 0 {
		rowsByKey[""] = nil
	}
	for key, rows := range rowsByKey {
		vals := make([]float64, len(q.Aggs))
		for j, a := range q.Aggs {
			var xs []float64
			for _, i := range rows {
				if a.Col == "" {
					xs = append(xs, 1)
				} else {
					xs = append(xs, tbl.Column(a.Col).Value(i).AsFloat())
				}
			}
			switch a.Func {
			case AggCount:
				vals[j] = float64(len(xs))
			case AggSum:
				vals[j] = sumF(xs)
			case AggAvg:
				if len(xs) > 0 {
					vals[j] = sumF(xs) / float64(len(xs))
				} else {
					vals[j] = math.NaN()
				}
			case AggMin:
				vals[j] = minF(xs)
			case AggMax:
				vals[j] = maxF(xs)
			}
		}
		groups[key] = vals
	}
	return groups
}

func sumF(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
func minF(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
func maxF(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestExecDifferentialAgainstReference(t *testing.T) {
	// Random tables, random queries; columnar executor must agree with the
	// naive reference on every aggregate of every group.
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		tbl, _ := NewTable("t",
			ColumnDef{"alpha", KindString},
			ColumnDef{"beta", KindInt},
			ColumnDef{"gamma", KindFloat},
			ColumnDef{"delta", KindString},
		)
		nRows := rng.Intn(80)
		words := []string{"red", "green", "blue", "teal"}
		for i := 0; i < nRows; i++ {
			if err := tbl.AppendRow(
				Str(words[rng.Intn(len(words))]),
				Int(int64(rng.Intn(5))),
				Float(float64(rng.Intn(20))/2),
				Str(words[rng.Intn(len(words))]),
			); err != nil {
				t.Fatal(err)
			}
		}
		db := NewDB()
		db.Register(tbl)
		q := randomExecQuery(rng, words)
		got, err := db.Exec(q)
		if err != nil {
			t.Fatalf("exec %s: %v", q.SQL(), err)
		}
		want := referenceExecute(tbl, q)
		if len(q.GroupBy) == 0 {
			checkRowAgainstReference(t, q, got.Rows[0], nil, want[""])
			continue
		}
		if len(got.Rows) != len(want) {
			t.Fatalf("%s: got %d groups, want %d", q.SQL(), len(got.Rows), len(want))
		}
		for _, row := range got.Rows {
			key := ""
			for i := range q.GroupBy {
				key += row[i].Display() + "\x00"
			}
			ref, ok := want[key]
			if !ok {
				t.Fatalf("%s: unexpected group %q", q.SQL(), key)
			}
			checkRowAgainstReference(t, q, row[len(q.GroupBy):], nil, ref)
		}
	}
}

func checkRowAgainstReference(t *testing.T, q Query, aggVals []Value, _ []string, ref []float64) {
	t.Helper()
	for j, a := range q.Aggs {
		got := aggVals[j]
		want := ref[j]
		if got.IsNull() {
			if a.Func == AggCount {
				t.Errorf("%s: count returned NULL", q.SQL())
			}
			// Reference encodes empty MIN/MAX/AVG as +/-Inf or NaN.
			if !math.IsInf(want, 0) && !math.IsNaN(want) {
				t.Errorf("%s agg %d: got NULL, want %v", q.SQL(), j, want)
			}
			continue
		}
		if math.Abs(got.AsFloat()-want) > 1e-9 {
			t.Errorf("%s agg %d: got %v, want %v", q.SQL(), j, got.AsFloat(), want)
		}
	}
}

// randomExecQuery draws a valid random query over the differential-test
// schema.
func randomExecQuery(rng *rand.Rand, words []string) Query {
	numCols := []string{"beta", "gamma"}
	strCols := []string{"alpha", "delta"}
	q := Query{Table: "t"}
	nAggs := 1 + rng.Intn(3)
	for i := 0; i < nAggs; i++ {
		f := AllAggFuncs[rng.Intn(len(AllAggFuncs))]
		if f == AggCount && rng.Intn(2) == 0 {
			q.Aggs = append(q.Aggs, Aggregate{Func: AggCount})
			continue
		}
		q.Aggs = append(q.Aggs, Aggregate{Func: f, Col: numCols[rng.Intn(len(numCols))]})
	}
	for i := 0; i < rng.Intn(3); i++ {
		if rng.Intn(2) == 0 {
			q.Preds = append(q.Preds, Predicate{
				Col: strCols[rng.Intn(len(strCols))], Op: OpEq,
				Values: []Value{Str(words[rng.Intn(len(words))])},
			})
		} else {
			n := 1 + rng.Intn(3)
			vals := make([]Value, n)
			for j := range vals {
				vals[j] = Int(int64(rng.Intn(6)))
			}
			q.Preds = append(q.Preds, Predicate{Col: "beta", Op: OpIn, Values: vals})
		}
	}
	if rng.Intn(2) == 0 {
		q.GroupBy = []string{strCols[rng.Intn(len(strCols))]}
	}
	return q
}

func TestResultScalarShapeErrors(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT count(*), origin FROM flights GROUP BY origin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar(); err == nil {
		t.Error("Scalar on grouped result should error")
	}
	res, _ = db.Query("SELECT count(*), sum(delay) FROM flights")
	if _, err := res.Scalar(); err == nil {
		t.Error("Scalar on two-aggregate result should error")
	}
}

func TestTableAppendRowRollback(t *testing.T) {
	tbl, _ := NewTable("t", ColumnDef{"a", KindInt}, ColumnDef{"b", KindInt})
	if err := tbl.AppendRow(Int(1), Str("oops")); err == nil {
		t.Fatal("expected kind-mismatch error")
	}
	if tbl.NumRows() != 0 || tbl.Column("a").Len() != 0 {
		t.Error("failed append left columns misaligned")
	}
	if err := tbl.AppendRow(Int(1)); err == nil {
		t.Error("expected arity error")
	}
	if err := tbl.AppendRow(Int(1), Int(2)); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Error("good row not appended")
	}
}

func TestValueSemantics(t *testing.T) {
	if Int(3).Equal(Float(3)) != true {
		t.Error("3 == 3.0 should hold")
	}
	if Str("a").Equal(Str("b")) {
		t.Error("a != b")
	}
	if Null().Equal(Null()) {
		t.Error("NULL never equals NULL")
	}
	if Str("3").Equal(Int(3)) {
		t.Error("string never equals number")
	}
	if got := Str("O'Neill").String(); got != "'O''Neill'" {
		t.Errorf("SQL literal = %s", got)
	}
	if got := Str("x").Display(); got != "x" {
		t.Errorf("Display = %s", got)
	}
	if !strings.Contains(KindString.String(), "TEXT") {
		t.Errorf("Kind name = %s", KindString)
	}
}
