package sqldb

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DB is a named collection of tables. All query methods are safe for
// concurrent use once loading (CreateTable/AppendRow) has finished;
// registration itself is also guarded so tools can build tables in
// parallel.
type DB struct {
	mu             sync.RWMutex
	tables         map[string]*Table
	parallelism    int
	scanThroughput float64 // rows/s; 0 = unthrottled

	sketch sketchStore
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Register adds a table to the database, replacing any previous table of
// the same name.
func (db *DB) Register(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[t.Name] = t
}

// Table returns the named table, or an error naming the available tables.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("sqldb: unknown table %q (have %v)", name, db.tableNamesLocked())
}

// TableNames returns the registered table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableNamesLocked()
}

func (db *DB) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exec runs a query AST and returns its result.
func (db *DB) Exec(q Query) (Result, error) {
	t, err := db.Table(q.Table)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res, err := execute(t, q, execOptions{parallelism: db.getParallelism()})
	db.throttle(start, float64(t.NumRows()))
	return res, err
}

// ExecSampled runs a query over a deterministic uniform sample of the table
// with the given rate in (0, 1]; COUNT and SUM results are scaled to
// estimate the full-data answer. This is the engine-level primitive behind
// MUVE's approximate processing strategies (Section 8.2).
func (db *DB) ExecSampled(q Query, rate float64, seed uint64) (Result, error) {
	if rate <= 0 || rate > 1 {
		return Result{}, fmt.Errorf("sqldb: sample rate %v outside (0, 1]", rate)
	}
	t, err := db.Table(q.Table)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res, err := execute(t, q, execOptions{sampleRate: rate, sampleSeed: seed, parallelism: db.getParallelism()})
	// A physical sample only reads the sampled fraction of the data.
	db.throttle(start, float64(t.NumRows())*rate)
	return res, err
}

// throttle sleeps so the elapsed execution time matches the configured
// scan throughput for the given number of effective rows.
func (db *DB) throttle(start time.Time, effectiveRows float64) {
	tp := db.getScanThroughput()
	if tp <= 0 {
		return
	}
	target := time.Duration(effectiveRows / tp * float64(time.Second))
	if wait := target - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
}

// Query parses and runs a SQL string.
func (db *DB) Query(sql string) (Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.Exec(q)
}
