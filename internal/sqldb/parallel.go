package sqldb

import (
	"math"
	"runtime"
	"sync"
)

// SetParallelism configures how many goroutines query execution may use
// for table scans (1 = serial, the default; 0 = GOMAXPROCS). Parallel
// execution covers ungrouped aggregation and the single-string-column
// GROUP BY fast path — the two shapes MUVE issues; composite-key grouping
// falls back to serial. Results are bit-identical to serial execution.
//
// Parallelism is off by default so experiment timings stay comparable to
// a single-backend-process baseline; interactive deployments should turn
// it on.
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	db.parallelism = n
}

// parallelism returns the configured scan parallelism.
func (db *DB) getParallelism() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.parallelism < 1 {
		return 1
	}
	return db.parallelism
}

// parallelMinRows is the table size below which parallel execution is not
// worth the goroutine fan-out.
const parallelMinRows = 50_000

// canParallelize reports whether the query shape supports the parallel
// path.
func canParallelize(t *Table, q Query) bool {
	if len(q.GroupBy) == 0 {
		return true
	}
	if len(q.GroupBy) == 1 {
		if c := t.Column(q.GroupBy[0]); c != nil && c.Kind == KindString {
			return true
		}
	}
	return false
}

// executeParallel runs a validated query across par workers and merges
// their partial aggregation states. Caller guarantees canParallelize.
func executeParallel(t *Table, q Query, opt execOptions, par int) (Result, error) {
	n := t.NumRows()
	chunk := (n + par - 1) / par
	type partial struct {
		states []aggState // flat [code*nAggs + j] for grouped, [j] ungrouped
		seen   []bool     // grouped only
		err    error
	}
	nAggs := len(q.Aggs)
	var keyCol *Column
	nCodes := 1
	if len(q.GroupBy) == 1 {
		keyCol = t.Column(q.GroupBy[0])
		nCodes = len(keyCol.dict)
		if nCodes == 0 {
			nCodes = 1
		}
	}
	parts := make([]partial, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sel, err := filterRowsRange(t, q.Preds, opt, lo, hi)
			if err != nil {
				parts[w].err = err
				return
			}
			accs := make([]func(i int) float64, nAggs)
			for j, a := range q.Aggs {
				accs[j] = numericAccessor(t, a)
			}
			if keyCol == nil {
				states := make([]aggState, nAggs)
				for _, ri := range sel {
					i := int(ri)
					for j := 0; j < nAggs; j++ {
						if accs[j] == nil {
							states[j].count++
							continue
						}
						states[j].add(accs[j](i))
					}
				}
				parts[w].states = states
				return
			}
			states := make([]aggState, nCodes*nAggs)
			seen := make([]bool, nCodes)
			codes := keyCol.codes
			for _, ri := range sel {
				i := int(ri)
				code := codes[i]
				seen[code] = true
				base := int(code) * nAggs
				for j := 0; j < nAggs; j++ {
					if accs[j] == nil {
						states[base+j].count++
						continue
					}
					states[base+j].add(accs[j](i))
				}
			}
			parts[w].states = states
			parts[w].seen = seen
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range parts {
		if parts[w].err != nil {
			return Result{}, parts[w].err
		}
	}
	scale := 1.0
	if opt.sampleRate > 0 && opt.sampleRate < 1 {
		scale = 1 / opt.sampleRate
	}
	if keyCol == nil {
		merged := make([]aggState, nAggs)
		for w := range parts {
			for j := range parts[w].states {
				merged[j].merge(&parts[w].states[j])
			}
		}
		row := make([]Value, nAggs)
		for j, a := range q.Aggs {
			row[j] = merged[j].value(a.Func, scale)
		}
		return Result{Cols: aggColNames(q), Rows: [][]Value{row}}, nil
	}
	mergedStates := make([]aggState, nCodes*nAggs)
	mergedSeen := make([]bool, nCodes)
	for w := range parts {
		if parts[w].states == nil {
			continue
		}
		for code := 0; code < nCodes; code++ {
			if !parts[w].seen[code] {
				continue
			}
			mergedSeen[code] = true
			base := code * nAggs
			for j := 0; j < nAggs; j++ {
				mergedStates[base+j].merge(&parts[w].states[base+j])
			}
		}
	}
	return emitGroupedResult(q, keyCol, mergedStates, mergedSeen, scale), nil
}

// merge folds another partial aggregation state into s.
func (s *aggState) merge(o *aggState) {
	if o.count == 0 && !o.seen {
		return
	}
	s.count += o.count
	s.sum += o.sum
	if o.seen {
		if !s.seen || o.min < s.min {
			s.min = o.min
		}
		if !s.seen || o.max > s.max {
			s.max = o.max
		}
		s.seen = true
	}
}

// filterRowsRange is filterRows restricted to rows [lo, hi).
func filterRowsRange(t *Table, preds []Predicate, opt execOptions, lo, hi int) ([]int32, error) {
	checks := make([]rowCheck, 0, len(preds))
	for _, p := range preds {
		chk, always, never, err := compilePredicate(t, p)
		if err != nil {
			return nil, err
		}
		if never {
			return nil, nil
		}
		if always {
			continue
		}
		checks = append(checks, chk)
	}
	sel := make([]int32, 0, 1024)
	sampling := opt.sampleRate > 0 && opt.sampleRate < 1
	var threshold uint64
	if sampling {
		threshold = uint64(opt.sampleRate * float64(math.MaxUint64))
	}
rows:
	for i := lo; i < hi; i++ {
		if sampling && rowHash(uint64(i), opt.sampleSeed) > threshold {
			continue
		}
		for _, chk := range checks {
			if !chk(i) {
				continue rows
			}
		}
		sel = append(sel, int32(i))
	}
	return sel, nil
}

// emitGroupedResult renders grouped states sorted by key value.
func emitGroupedResult(q Query, keyCol *Column, states []aggState, seen []bool, scale float64) Result {
	nAggs := len(q.Aggs)
	cols := append(append([]string(nil), q.GroupBy...), aggColNames(q)...)
	res := Result{Cols: cols}
	order := make([]int, 0, len(seen))
	for code, ok := range seen {
		if ok {
			order = append(order, code)
		}
	}
	sortByDict(order, keyCol.dict)
	for _, code := range order {
		row := make([]Value, 0, 1+nAggs)
		row = append(row, Str(keyCol.dict[code]))
		base := code * nAggs
		for j, a := range q.Aggs {
			row = append(row, states[base+j].value(a.Func, scale))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// sortByDict sorts dictionary codes by their string value (insertion sort:
// group counts are tiny).
func sortByDict(codes []int, dict []string) {
	for i := 1; i < len(codes); i++ {
		for j := i; j > 0 && dict[codes[j]] < dict[codes[j-1]]; j-- {
			codes[j], codes[j-1] = codes[j-1], codes[j]
		}
	}
}

// SetScanThroughput throttles query execution to the given effective scan
// rate in rows per second (0 disables throttling, the default). It
// emulates a disk-bound backend like the paper's 10 GB-on-laptop Postgres
// setup, where scan time dominates: exact execution is charged for every
// table row, while sampled execution is charged only for the sample (the
// standard physical-sample model of approximate query processing). The
// experiments reproducing the paper's user-facing latency comparisons use
// this to recreate "large data" conditions that the in-memory engine is
// otherwise too fast to exhibit.
func (db *DB) SetScanThroughput(rowsPerSecond float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scanThroughput = rowsPerSecond
}

// getScanThroughput returns the configured throttle.
func (db *DB) getScanThroughput() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scanThroughput
}
