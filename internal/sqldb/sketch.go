package sqldb

import (
	"sort"
	"sync"
	"time"
)

// Aggregate sketches give the progressive path an instant approximate
// first paint. MUVE's candidate queries overwhelmingly share a template
// — same aggregate, same predicate column, different (phonetically
// confusable) constant. One sampled GROUP BY over the predicate column
// therefore precomputes the approximate answer for EVERY constant at
// once; subsequent candidates of the same template are answered from the
// in-memory sketch with zero data movement. Grouped (trend) templates
// work the same way one dimension up: one sampled GROUP BY over
// (predicate column, group column) precomputes every constant's whole
// approximate series. Sketches are keyed by table generation, so any
// append invalidates them implicitly.

// sketchSeed fixes the sample for sketch builds; a deterministic sample
// keeps sketch answers stable across candidates and runs.
const sketchSeed = 0x5eedc0de

// sketchKey identifies a sketch template: one aggregate computed per
// distinct value of one predicate column, optionally further split by
// one group column (trend templates). groupCol is empty for scalar
// templates.
type sketchKey struct {
	table    string
	agg      Aggregate
	groupCol string
	predCol  string
}

// sketch holds the per-constant approximate values of one template at
// one table generation. Scalar templates fill vals; grouped templates
// fill rows (constant → [group label, aggregate] rows, ordered exactly
// as the sampled grouped query would order them).
type sketch struct {
	gen  uint64
	rate float64
	vals map[string]Value
	rows map[string][][]Value
}

// sketchStore caches sketches per DB; a separate lock keeps builds off
// the table-registry lock.
type sketchStore struct {
	mu       sync.Mutex
	rate     float64
	sketches map[sketchKey]*sketch
}

// EnableSketches turns on aggregate sketching at the given sample rate
// in (0, 1); rate 0 disables. The rate bounds build cost (one sampled
// grouped scan per template per table generation) and first-paint error.
func (db *DB) EnableSketches(rate float64) {
	db.sketch.mu.Lock()
	defer db.sketch.mu.Unlock()
	if rate <= 0 || rate >= 1 {
		db.sketch.rate = 0
		db.sketch.sketches = nil
		return
	}
	db.sketch.rate = rate
	if db.sketch.sketches == nil {
		db.sketch.sketches = make(map[sketchKey]*sketch)
	}
}

// SketchRate returns the configured sketch sample rate (0 = disabled).
func (db *DB) SketchRate() float64 {
	db.sketch.mu.Lock()
	defer db.sketch.mu.Unlock()
	return db.sketch.rate
}

// sketchable extracts the template of a query the sketch store can
// answer: a single aggregate with exactly one string-equality predicate
// on a string column, either ungrouped (scalar template) or grouped by
// one string column other than the predicate column (trend template).
func sketchable(t *Table, q Query) (key sketchKey, constant string, ok bool) {
	if len(q.Aggs) != 1 || len(q.Preds) != 1 {
		return sketchKey{}, "", false
	}
	p := q.Preds[0]
	if p.Op != OpEq || len(p.Values) != 1 || p.Values[0].K != KindString {
		return sketchKey{}, "", false
	}
	c := t.Column(p.Col)
	if c == nil || c.Kind != KindString {
		return sketchKey{}, "", false
	}
	key = sketchKey{table: q.Table, agg: q.Aggs[0], predCol: p.Col}
	switch len(q.GroupBy) {
	case 0:
	case 1:
		g := t.Column(q.GroupBy[0])
		if g == nil || g.Kind != KindString || q.GroupBy[0] == p.Col {
			return sketchKey{}, "", false
		}
		key.groupCol = q.GroupBy[0]
	default:
		return sketchKey{}, "", false
	}
	if err := q.Validate(t); err != nil {
		return sketchKey{}, "", false
	}
	return key, p.Values[0].S, true
}

// SketchLookup answers a scalar (ungrouped) query from an aggregate
// sketch when possible. The returned value is what ExecSampled(q, rate,
// sketchSeed) would produce — bit-identical, since the sketch is built
// by the same deterministic sample and the same ascending-row
// accumulation — so it carries the usual sampled-COUNT/SUM scaling. ok
// is false when sketching is disabled or the query doesn't match a
// sketchable template; stats records whether the sketch had to be
// (re)built.
func (db *DB) SketchLookup(q Query) (Value, ScanStats, bool) {
	if len(q.GroupBy) != 0 {
		return Value{}, ScanStats{}, false
	}
	res, stats, ok := db.SketchLookupResult(q)
	if !ok {
		return Value{}, ScanStats{}, false
	}
	return res.Rows[0][0], stats, true
}

// SketchLookupResult answers a query — scalar or single-string-column
// grouped — from an aggregate sketch when possible, returning the full
// Result shape. The result is bit-identical to ExecSampled(q, rate,
// sketchSeed): same values, same group rows, same group order.
func (db *DB) SketchLookupResult(q Query) (Result, ScanStats, bool) {
	if db.SketchRate() == 0 {
		return Result{}, ScanStats{}, false
	}
	t, err := db.Table(q.Table)
	if err != nil {
		return Result{}, ScanStats{}, false
	}
	key, constant, ok := sketchable(t, q)
	if !ok {
		return Result{}, ScanStats{}, false
	}

	db.sketch.mu.Lock()
	defer db.sketch.mu.Unlock()
	rate := db.sketch.rate
	if rate == 0 {
		return Result{}, ScanStats{}, false
	}
	var stats ScanStats
	s := db.sketch.sketches[key]
	if s == nil || s.gen != t.Generation() || s.rate != rate {
		s, err = buildSketch(db, t, key, rate)
		if err != nil {
			return Result{}, ScanStats{}, false
		}
		db.sketch.sketches[key] = s
		stats.SketchBuilds++
		stats.Scans++
		stats.Rows += int64(t.NumRows())
	}
	stats.SketchHits++
	cols := append(append([]string(nil), q.GroupBy...), aggColNames(q)...)
	if key.groupCol == "" {
		if v, ok := s.vals[constant]; ok {
			return Result{Cols: cols, Rows: [][]Value{{v}}}, stats, true
		}
		// Constant absent from the sample (or the data): exactly what the
		// sampled query would see — an empty selection.
		var empty aggState
		return Result{Cols: cols, Rows: [][]Value{{empty.value(key.agg.Func, 1/rate)}}}, stats, true
	}
	// Grouped template: the constant's precomputed series. An absent
	// constant means the sampled grouped query would emit zero rows.
	src := s.rows[constant]
	out := Result{Cols: cols, Rows: make([][]Value, len(src))}
	for i, row := range src {
		out.Rows[i] = append([]Value(nil), row...)
	}
	return out, stats, true
}

// buildSketch runs the sampled grouped scan that materializes one
// template's sketch: GROUP BY the predicate column for scalar
// templates, GROUP BY (predicate column, group column) for grouped
// ones. Called with the sketch lock held: concurrent lookups of the
// same cold template build once.
func buildSketch(db *DB, t *Table, key sketchKey, rate float64) (*sketch, error) {
	q := Query{
		Aggs:    []Aggregate{key.agg},
		Table:   key.table,
		GroupBy: []string{key.predCol},
	}
	if key.groupCol != "" {
		q.GroupBy = append(q.GroupBy, key.groupCol)
	}
	start := time.Now()
	res, err := execute(t, q, execOptions{sampleRate: rate, sampleSeed: sketchSeed})
	// The build reads the sampled fraction of the table, like any
	// sampled scan.
	db.throttle(start, float64(t.NumRows())*rate)
	if err != nil {
		return nil, err
	}
	s := &sketch{gen: t.Generation(), rate: rate}
	if key.groupCol == "" {
		s.vals = make(map[string]Value, len(res.Rows))
		for _, row := range res.Rows {
			if len(row) != 2 {
				continue
			}
			s.vals[row[0].S] = row[1]
		}
		return s, nil
	}
	s.rows = make(map[string][][]Value, 64)
	for _, row := range res.Rows {
		if len(row) != 3 {
			continue
		}
		s.rows[row[0].S] = append(s.rows[row[0].S], []Value{row[1], row[2]})
	}
	// The two-column build emits groups ordered by serialized composite
	// key (dictionary codes), but a direct sampled execution of one
	// constant's query takes the single-string-column fast path, which
	// orders groups by dictionary *string*. Re-sort each constant's
	// series to that order so sketch answers match bit-for-bit,
	// ordering included.
	for _, rows := range s.rows {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].S < rows[j][0].S })
	}
	return s, nil
}
