package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns a SQL string into a Query AST. The accepted grammar is the
// query class MUVE operates on:
//
//	SELECT agg [, agg]... [, col]... FROM table
//	  [WHERE col = literal [AND ...] | col IN (lit, ...)]
//	  [GROUP BY col [, col]...]
//
// where agg is count(*), count(col), sum(col), avg(col), min(col), or
// max(col). Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(sql string) (Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and
// hand-written constant queries.
func MustParse(sql string) Query {
	q, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword reports whether the current token is the given keyword
// (case-insensitive identifier match) and consumes it when it is.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqldb: expected %s, found %s at offset %d", strings.ToUpper(kw), p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return token{}, fmt.Errorf("sqldb: expected %s, found %s at offset %d", what, t, t.pos)
	}
	p.i++
	return t, nil
}

func (p *parser) parseQuery() (Query, error) {
	var q Query
	if err := p.expectKeyword("select"); err != nil {
		return q, err
	}
	// Select list: aggregates and (for merged queries) plain group columns.
	var plainCols []string
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return q, fmt.Errorf("sqldb: expected select item, found %s at offset %d", t, t.pos)
		}
		if f, ok := ParseAggFunc(t.text); ok && p.toks[p.i+1].kind == tokLParen {
			p.i += 2 // consume name and '('
			agg := Aggregate{Func: f}
			switch p.cur().kind {
			case tokStar:
				if f != AggCount {
					return q, fmt.Errorf("sqldb: %s(*) is not supported at offset %d", f, p.cur().pos)
				}
				p.i++
			case tokIdent:
				agg.Col = p.next().text
			default:
				return q, fmt.Errorf("sqldb: expected column or '*', found %s at offset %d", p.cur(), p.cur().pos)
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return q, err
			}
			// Optional "AS alias" — accepted and ignored.
			if p.keyword("as") {
				if _, err := p.expect(tokIdent, "alias"); err != nil {
					return q, err
				}
			}
			q.Aggs = append(q.Aggs, agg)
		} else {
			plainCols = append(plainCols, p.next().text)
		}
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return q, err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return q, err
	}
	q.Table = tbl.text

	if p.keyword("where") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return q, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return q, err
		}
		for {
			col, err := p.expect(tokIdent, "GROUP BY column")
			if err != nil {
				return q, err
			}
			q.GroupBy = append(q.GroupBy, col.text)
			if p.cur().kind != tokComma {
				break
			}
			p.i++
		}
	}
	if p.cur().kind != tokEOF {
		return q, fmt.Errorf("sqldb: unexpected %s at offset %d", p.cur(), p.cur().pos)
	}
	if len(q.Aggs) == 0 {
		return q, fmt.Errorf("sqldb: query must contain at least one aggregate")
	}
	// Plain select-list columns must be grouped; this is the merged-query
	// form "SELECT agg, col FROM t ... GROUP BY col".
	for _, c := range plainCols {
		if !containsString(q.GroupBy, c) {
			return q, fmt.Errorf("sqldb: column %q must appear in GROUP BY", c)
		}
	}
	return q, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col, err := p.expect(tokIdent, "predicate column")
	if err != nil {
		return Predicate{}, err
	}
	pred := Predicate{Col: col.text}
	switch {
	case p.cur().kind == tokEq:
		p.i++
		v, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		pred.Op = OpEq
		pred.Values = []Value{v}
	case p.keyword("in"):
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return Predicate{}, err
		}
		pred.Op = OpIn
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return Predicate{}, err
			}
			pred.Values = append(pred.Values, v)
			if p.cur().kind == tokComma {
				p.i++
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Predicate{}, err
		}
	default:
		return Predicate{}, fmt.Errorf("sqldb: expected '=' or IN after %q at offset %d", col.text, p.cur().pos)
	}
	return pred, nil
}

func (p *parser) parseLiteral() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.i++
		return Str(t.text), nil
	case tokNumber:
		p.i++
		if !strings.ContainsAny(t.text, ".eE") {
			iv, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return Int(iv), nil
			}
		}
		fv, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Null(), fmt.Errorf("sqldb: bad number %q at offset %d", t.text, t.pos)
		}
		return Float(fv), nil
	case tokIdent:
		// Bare words in predicates are treated as string literals; voice
		// transcripts produce unquoted constants ("borough = Brooklyn").
		p.i++
		return Str(t.text), nil
	}
	return Null(), fmt.Errorf("sqldb: expected literal, found %s at offset %d", t, t.pos)
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
