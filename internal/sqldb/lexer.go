package sqldb

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokStar
)

// token is one lexical unit of a SQL string.
type token struct {
	kind tokenKind
	text string // identifier (original case), number text, or string body
	pos  int    // byte offset in the input, for error messages
}

// String renders the token for error messages.
func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEq:
		return "'='"
	case tokStar:
		return "'*'"
	}
	return "unknown token"
}

// lex splits a SQL string into tokens. String literals use single quotes
// with ” as the escape, or double quotes (treated identically: the engine
// has no quoted identifiers). Identifiers are [A-Za-z_][A-Za-z0-9_]*.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if quote == '\'' && i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{tokString, b.String(), start})
		case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
			start := i
			if c == '-' || c == '+' {
				i++
				if i >= n || !(input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
					return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, start)
				}
			}
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '-' || input[i] == '+') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
