// Package sqldb is MUVE's query-processing substrate: an in-memory,
// columnar, single-node SQL engine supporting exactly the query class the
// paper targets — single-table aggregation queries with equality and IN
// predicates, optionally grouped — plus the facilities MUVE's processing
// optimizations need:
//
//   - a Postgres-optimizer-style cost model with EXPLAIN output, used by
//     the query merger to decide whether merging pays off (Section 8.1);
//   - uniform sampling for approximate query processing (Section 8.2);
//   - GROUP BY / IN execution so merged queries can compute many candidate
//     results in one scan.
//
// The original system runs on Postgres 13.1; this engine reproduces the
// behaviours MUVE exercises so every experiment code path runs unchanged.
package sqldb

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types the engine supports.
type Kind uint8

const (
	// KindNull is the zero Kind; it marks absent values.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed SQL value.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{K: KindString, S: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsFloat converts numeric values to float64; strings and NULL yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// Equal reports SQL equality between two values. Integers and floats
// compare numerically across kinds; NULL equals nothing (not even NULL),
// matching SQL three-valued logic restricted to the predicates we support.
func (v Value) Equal(o Value) bool {
	if v.K == KindNull || o.K == KindNull {
		return false
	}
	switch {
	case v.K == KindString || o.K == KindString:
		return v.K == o.K && v.S == o.S
	case v.K == KindInt && o.K == KindInt:
		return v.I == o.I
	default:
		return v.AsFloat() == o.AsFloat()
	}
}

// String formats the value as a SQL literal.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + escapeSQLString(v.S) + "'"
	}
	return "?"
}

// Display formats the value for human-facing output (no quotes on strings).
func (v Value) Display() string {
	if v.K == KindString {
		return v.S
	}
	return v.String()
}

// escapeSQLString doubles single quotes per SQL literal rules.
func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
