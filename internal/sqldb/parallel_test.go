package sqldb

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Aliases keep the throttle test readable.
var (
	timeNow   = time.Now
	timeSince = time.Since
)

const millisecond = time.Millisecond

// parallelTable builds a table above the parallel threshold.
func parallelTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl, err := NewTable("p",
		ColumnDef{"grp", KindString},
		ColumnDef{"cat", KindString},
		ColumnDef{"x", KindFloat},
		ColumnDef{"k", KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"a", "b", "c", "d", "e"}
	cats := []string{"p", "q"}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(
			Str(groups[rng.Intn(len(groups))]),
			Str(cats[rng.Intn(len(cats))]),
			Float(rng.NormFloat64()*10),
			Int(int64(rng.Intn(50))),
		); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestParallelMatchesSerial is the core guarantee: parallel execution is
// bit-identical to serial for every supported query shape, including
// sampled execution.
func TestParallelMatchesSerial(t *testing.T) {
	tbl := parallelTable(t, parallelMinRows+10_000)
	serial := NewDB()
	serial.Register(tbl)
	par := NewDB()
	par.Register(tbl)
	par.SetParallelism(4)

	queries := []string{
		"SELECT count(*) FROM p",
		"SELECT sum(x) FROM p WHERE grp = 'a'",
		"SELECT avg(x), min(x), max(x) FROM p WHERE grp IN ('a','b','c')",
		"SELECT count(*) FROM p WHERE k = 7",
		"SELECT sum(x), grp FROM p GROUP BY grp",
		"SELECT count(*), avg(x), grp FROM p WHERE cat = 'p' GROUP BY grp",
		"SELECT min(x) FROM p WHERE grp = 'NOSUCH'",
	}
	for _, sql := range queries {
		a, err := serial.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		b, err := par.Query(sql)
		if err != nil {
			t.Fatalf("%s (parallel): %v", sql, err)
		}
		assertResultsEqual(t, sql, a, b)
	}
	// Sampled execution matches exactly too (the sample is row-id based,
	// independent of chunking).
	q := MustParse("SELECT sum(x), grp FROM p GROUP BY grp")
	a, err := serial.ExecSampled(q, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.ExecSampled(q, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "sampled group", a, b)
}

func assertResultsEqual(t *testing.T, label string, a, b Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, len(a.Rows), len(a.Cols), len(b.Rows), len(b.Cols))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			va, vb := a.Rows[i][j], b.Rows[i][j]
			if va.IsNull() != vb.IsNull() {
				t.Fatalf("%s: row %d col %d null mismatch", label, i, j)
			}
			if va.K == KindString {
				if va.S != vb.S {
					t.Fatalf("%s: row %d col %d %q vs %q", label, i, j, va.S, vb.S)
				}
				continue
			}
			// Floating-point addition order differs across chunks; allow
			// ulp-scale tolerance relative to magnitude.
			diff := math.Abs(va.AsFloat() - vb.AsFloat())
			tol := 1e-9 * (1 + math.Abs(va.AsFloat()))
			if diff > tol {
				t.Fatalf("%s: row %d col %d %v vs %v", label, i, j, va.AsFloat(), vb.AsFloat())
			}
		}
	}
}

func TestParallelFallbacks(t *testing.T) {
	// Composite GROUP BY keys fall back to serial and still work.
	tbl := parallelTable(t, parallelMinRows+5_000)
	db := NewDB()
	db.Register(tbl)
	db.SetParallelism(4)
	res, err := db.Query("SELECT count(*), grp, cat FROM p GROUP BY grp, cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("groups = %d, want 10", len(res.Rows))
	}
	// Small tables stay serial (no way to observe directly; this just
	// exercises the threshold branch).
	small := NewDB()
	smallTbl := parallelTable(t, 1000)
	smallTbl.Name = "p"
	small.Register(smallTbl)
	small.SetParallelism(4)
	if _, err := small.Query("SELECT count(*) FROM p"); err != nil {
		t.Fatal(err)
	}
}

func TestSetParallelismNormalization(t *testing.T) {
	db := NewDB()
	db.SetParallelism(-3)
	if got := db.getParallelism(); got != 1 {
		t.Errorf("negative parallelism -> %d, want 1", got)
	}
	db.SetParallelism(0)
	if got := db.getParallelism(); got < 1 {
		t.Errorf("GOMAXPROCS parallelism -> %d", got)
	}
	db.SetParallelism(8)
	if got := db.getParallelism(); got != 8 {
		t.Errorf("parallelism = %d", got)
	}
}

func TestParallelErrorPropagation(t *testing.T) {
	tbl := parallelTable(t, parallelMinRows+1)
	db := NewDB()
	db.Register(tbl)
	db.SetParallelism(4)
	// Validation errors surface before any goroutine runs.
	if _, err := db.Query("SELECT sum(grp) FROM p"); err == nil {
		t.Error("invalid aggregate accepted")
	}
}

func TestScanThroughputThrottle(t *testing.T) {
	tbl := parallelTable(t, 60_000)
	db := NewDB()
	db.Register(tbl)
	db.SetScanThroughput(1_000_000) // 60k rows -> ~60ms exact

	q := MustParse("SELECT count(*) FROM p")
	start := timeNow()
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	exact := timeSince(start)
	if exact < 50*millisecond {
		t.Errorf("throttled exact execution took %v, want >= ~60ms", exact)
	}
	// A 1%% sample is charged only 1%% of the rows.
	start = timeNow()
	if _, err := db.ExecSampled(q, 0.01, 1); err != nil {
		t.Fatal(err)
	}
	sampled := timeSince(start)
	if sampled > exact/2 {
		t.Errorf("sampled %v not much faster than exact %v", sampled, exact)
	}
	// Disabling restores full speed.
	db.SetScanThroughput(0)
	start = timeNow()
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	if timeSince(start) > 30*millisecond {
		t.Error("unthrottled execution still slow")
	}
}
