package sqldb

import (
	"fmt"
	"strings"
)

// AggFunc enumerates the aggregation functions the engine supports — the
// query class MUVE targets produces "one single, numerical output"
// (paper Definition 1), i.e. exactly these aggregates.
type AggFunc uint8

const (
	// AggCount is COUNT(*) or COUNT(col).
	AggCount AggFunc = iota
	// AggSum is SUM(col).
	AggSum
	// AggAvg is AVG(col).
	AggAvg
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("agg(%d)", uint8(f))
}

// ParseAggFunc maps a (case-insensitive) name to an AggFunc.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg", "average", "mean":
		return AggAvg, true
	case "min", "minimum":
		return AggMin, true
	case "max", "maximum":
		return AggMax, true
	}
	return 0, false
}

// AllAggFuncs lists every supported aggregate; workload generators pick
// from this set uniformly, matching the paper's query generation protocol.
var AllAggFuncs = []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax}

// Aggregate is one output aggregate of a query. Col is empty for COUNT(*).
type Aggregate struct {
	Func AggFunc
	Col  string
}

// String renders the aggregate as SQL.
func (a Aggregate) String() string {
	if a.Col == "" {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Col)
}

// PredOp enumerates predicate operators.
type PredOp uint8

const (
	// OpEq is an equality predicate col = value.
	OpEq PredOp = iota
	// OpIn is a membership predicate col IN (v1, v2, ...). Query merging
	// rewrites several equality predicates on one column into an IN.
	OpIn
)

// Predicate is a conjunct of a query's WHERE clause.
type Predicate struct {
	Col    string
	Op     PredOp
	Values []Value // exactly one for OpEq
}

// String renders the predicate as SQL.
func (p Predicate) String() string {
	switch p.Op {
	case OpEq:
		return fmt.Sprintf("%s = %s", p.Col, p.Values[0])
	case OpIn:
		parts := make([]string, len(p.Values))
		for i, v := range p.Values {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
	}
	return "?"
}

// Query is the engine's AST: a single-table aggregation query with a
// conjunction of equality/IN predicates and an optional GROUP BY.
type Query struct {
	Aggs    []Aggregate
	Table   string
	Preds   []Predicate
	GroupBy []string
}

// SQL renders the query as a SQL string accepted by Parse.
func (q Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if len(q.GroupBy) > 0 {
		for _, g := range q.GroupBy {
			b.WriteString(", ")
			b.WriteString(g)
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(q.Table)
	if len(q.Preds) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Preds {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	return b.String()
}

// String is SQL.
func (q Query) String() string { return q.SQL() }

// Clone returns a deep copy of the query; planners mutate clones freely.
func (q Query) Clone() Query {
	cp := Query{
		Aggs:    append([]Aggregate(nil), q.Aggs...),
		Table:   q.Table,
		GroupBy: append([]string(nil), q.GroupBy...),
	}
	cp.Preds = make([]Predicate, len(q.Preds))
	for i, p := range q.Preds {
		cp.Preds[i] = Predicate{Col: p.Col, Op: p.Op, Values: append([]Value(nil), p.Values...)}
	}
	return cp
}

// Validate checks the query against a table's schema: referenced columns
// must exist, aggregated columns (other than COUNT) must be numeric, and
// GROUP BY columns must appear at most once.
func (q Query) Validate(t *Table) error {
	if len(q.Aggs) == 0 {
		return fmt.Errorf("sqldb: query on %q has no aggregates", q.Table)
	}
	for _, a := range q.Aggs {
		if a.Col == "" {
			if a.Func != AggCount {
				return fmt.Errorf("sqldb: %s requires a column", a.Func)
			}
			continue
		}
		c := t.Column(a.Col)
		if c == nil {
			return fmt.Errorf("sqldb: unknown column %q in aggregate", a.Col)
		}
		if a.Func != AggCount && c.Kind == KindString {
			return fmt.Errorf("sqldb: %s over TEXT column %q", a.Func, a.Col)
		}
	}
	for _, p := range q.Preds {
		if t.Column(p.Col) == nil {
			return fmt.Errorf("sqldb: unknown column %q in predicate", p.Col)
		}
		if len(p.Values) == 0 {
			return fmt.Errorf("sqldb: predicate on %q has no values", p.Col)
		}
		if p.Op == OpEq && len(p.Values) != 1 {
			return fmt.Errorf("sqldb: equality predicate on %q needs exactly one value", p.Col)
		}
	}
	seen := make(map[string]bool, len(q.GroupBy))
	for _, g := range q.GroupBy {
		if t.Column(g) == nil {
			return fmt.Errorf("sqldb: unknown GROUP BY column %q", g)
		}
		if seen[g] {
			return fmt.Errorf("sqldb: duplicate GROUP BY column %q", g)
		}
		seen[g] = true
	}
	return nil
}
