package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomScanTable builds a table with the column shapes MUVE queries
// touch: two dictionary-encoded string columns (one low-, one
// higher-cardinality), a small-domain int column and a float column.
func randomScanTable(t *testing.T, rng *rand.Rand, rows int) *Table {
	t.Helper()
	tbl, err := NewTable("sales",
		ColumnDef{Name: "cat", Kind: KindString},
		ColumnDef{Name: "region", Kind: KindString},
		ColumnDef{Name: "qty", Kind: KindInt},
		ColumnDef{Name: "price", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"apples", "oranges", "bananas", "grapes", "melons"}
	for i := 0; i < rows; i++ {
		err := tbl.AppendRow(
			Str(cats[rng.Intn(len(cats))]),
			Str(fmt.Sprintf("region-%d", rng.Intn(12))),
			Int(int64(rng.Intn(10))),
			Float(math.Round(rng.Float64()*1000)/10),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// randomScanQuery draws a candidate in the shared-scan query class: one
// aggregate, no GROUP BY, 0–3 predicates. Constants are sometimes drawn
// outside the data domain so never-matching predicates are exercised.
func randomScanQuery(rng *rand.Rand) Query {
	aggs := []Aggregate{
		{Func: AggCount},
		{Func: AggCount, Col: "qty"},
		{Func: AggSum, Col: "price"},
		{Func: AggSum, Col: "qty"},
		{Func: AggAvg, Col: "price"},
		{Func: AggMin, Col: "price"},
		{Func: AggMax, Col: "qty"},
	}
	q := Query{Aggs: []Aggregate{aggs[rng.Intn(len(aggs))]}, Table: "sales"}
	cats := []string{"apples", "oranges", "bananas", "grapes", "melons", "kiwis"} // kiwis never occurs
	for np := rng.Intn(4); np > 0; np-- {
		switch rng.Intn(4) {
		case 0:
			q.Preds = append(q.Preds, Predicate{Col: "cat", Op: OpEq,
				Values: []Value{Str(cats[rng.Intn(len(cats))])}})
		case 1:
			vals := []Value{}
			for k := rng.Intn(3) + 2; k > 0; k-- {
				vals = append(vals, Str(fmt.Sprintf("region-%d", rng.Intn(15))))
			}
			q.Preds = append(q.Preds, Predicate{Col: "region", Op: OpIn, Values: vals})
		case 2:
			q.Preds = append(q.Preds, Predicate{Col: "qty", Op: OpEq,
				Values: []Value{Int(int64(rng.Intn(12)))}})
		default:
			q.Preds = append(q.Preds, Predicate{Col: "price", Op: OpEq,
				Values: []Value{Float(math.Round(rng.Float64()*1000) / 10)}})
		}
	}
	return q
}

// sameValue demands bit-level agreement: Null matches only Null, and
// numeric results must have identical float64 bit patterns.
func sameValue(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
}

// TestSharedScanBitIdentical is the core correctness property of the
// shared-scan executor: for random tables and random candidate sets,
// every aggregate must be bit-identical to running each query alone
// through the row-at-a-time path — exact and sampled.
func TestSharedScanBitIdentical(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			rows := rng.Intn(3000)
			db := NewDB()
			db.Register(randomScanTable(t, rng, rows))

			nq := rng.Intn(24) + 1
			queries := make([]Query, nq)
			for i := range queries {
				queries[i] = randomScanQuery(rng)
			}

			// Exact: shared scan vs one Exec per query.
			shared, stats, err := db.ExecShared(queries)
			if err != nil {
				t.Fatalf("ExecShared: %v", err)
			}
			if stats.Scans != 1 || stats.Candidates != int64(nq) {
				t.Fatalf("stats = %+v, want 1 scan over %d candidates", stats, nq)
			}
			for i, q := range queries {
				res, err := db.Exec(q)
				if err != nil {
					t.Fatalf("Exec(%s): %v", q.SQL(), err)
				}
				want := res.Rows[0][0]
				if !sameValue(shared[i], want) {
					t.Fatalf("exact mismatch on %s: shared=%v rowwise=%v", q.SQL(), shared[i], want)
				}
			}

			// Sampled: same property under deterministic sampling.
			rate := 0.05 + rng.Float64()*0.9
			seed := rng.Uint64()
			sharedS, _, err := db.ExecSharedSampled(queries, rate, seed)
			if err != nil {
				t.Fatalf("ExecSharedSampled: %v", err)
			}
			for i, q := range queries {
				res, err := db.ExecSampled(q, rate, seed)
				if err != nil {
					t.Fatalf("ExecSampled(%s): %v", q.SQL(), err)
				}
				want := res.Rows[0][0]
				if !sameValue(sharedS[i], want) {
					t.Fatalf("sampled (rate=%v) mismatch on %s: shared=%v rowwise=%v",
						rate, q.SQL(), sharedS[i], want)
				}
			}
		})
	}
}

// TestSharedScanDedupsPredicates checks that repeated predicates across
// candidates are compiled and evaluated once.
func TestSharedScanDedupsPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 500))
	pred := Predicate{Col: "cat", Op: OpEq, Values: []Value{Str("apples")}}
	queries := []Query{
		{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales", Preds: []Predicate{pred}},
		{Aggs: []Aggregate{{Func: AggSum, Col: "price"}}, Table: "sales", Preds: []Predicate{pred}},
		{Aggs: []Aggregate{{Func: AggAvg, Col: "qty"}}, Table: "sales", Preds: []Predicate{pred}},
	}
	_, stats, err := db.ExecShared(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predicates != 3 || stats.SharedPredicates != 1 {
		t.Fatalf("stats = %+v, want 3 predicate instances deduplicated to 1", stats)
	}
}

// TestSharedScanRejectsMixedTables checks the same-table precondition.
func TestSharedScanRejectsMixedTables(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 10))
	_, _, err := db.ExecShared([]Query{
		{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales"},
		{Aggs: []Aggregate{{Func: AggCount}}, Table: "other"},
	})
	if err == nil {
		t.Fatal("expected error for queries spanning tables")
	}
}

// TestSketchMatchesSampledQuery: a sketch answer must be bit-identical
// to running the same query through ExecSampled at the sketch rate and
// seed — the sketch is a cache of that computation, not a new estimator.
func TestSketchMatchesSampledQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 2500))
	db.EnableSketches(0.2)
	cats := []string{"apples", "oranges", "bananas", "grapes", "melons", "kiwis"}
	aggs := []Aggregate{{Func: AggCount}, {Func: AggSum, Col: "price"}, {Func: AggAvg, Col: "qty"}}
	builds := int64(0)
	for _, a := range aggs {
		for _, cat := range cats {
			q := Query{Aggs: []Aggregate{a}, Table: "sales",
				Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str(cat)}}}}
			got, stats, ok := db.SketchLookup(q)
			if !ok {
				t.Fatalf("SketchLookup(%s) not ok", q.SQL())
			}
			builds += stats.SketchBuilds
			res, err := db.ExecSampled(q, 0.2, sketchSeed)
			if err != nil {
				t.Fatal(err)
			}
			if want := res.Rows[0][0]; !sameValue(got, want) {
				t.Fatalf("sketch mismatch on %s: sketch=%v sampled=%v", q.SQL(), got, want)
			}
		}
	}
	// One build per aggregate template, shared across all constants.
	if builds != int64(len(aggs)) {
		t.Fatalf("got %d sketch builds, want %d (one per template)", builds, len(aggs))
	}
}

// TestSketchErrorBound: sketch first-paint estimates of COUNT and SUM
// must land within a loose relative-error bound of the exact answer on
// well-populated groups — the property the progressive first paint
// relies on for a useful approximate plot.
func TestSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 20000))
	db.EnableSketches(0.2)
	for _, cat := range []string{"apples", "oranges", "bananas", "grapes", "melons"} {
		for _, a := range []Aggregate{{Func: AggCount}, {Func: AggSum, Col: "price"}} {
			q := Query{Aggs: []Aggregate{a}, Table: "sales",
				Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str(cat)}}}}
			approx, _, ok := db.SketchLookup(q)
			if !ok {
				t.Fatalf("SketchLookup(%s) not ok", q.SQL())
			}
			res, err := db.Exec(q)
			if err != nil {
				t.Fatal(err)
			}
			exact := res.Rows[0][0]
			relErr := math.Abs(approx.AsFloat()-exact.AsFloat()) / math.Abs(exact.AsFloat())
			// ~4000 sampled rows per group at rate 0.2; 20% is far
			// beyond any plausible sampling deviation and still tight
			// enough to catch scaling bugs (a missing 1/rate is 400%).
			if relErr > 0.20 {
				t.Fatalf("%s: sketch=%v exact=%v relative error %.3f > 0.20",
					q.SQL(), approx, exact, relErr)
			}
		}
	}
}

// TestSketchInvalidatedByAppend: appending a row bumps the table
// generation and must force a sketch rebuild.
func TestSketchInvalidatedByAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	tbl := randomScanTable(t, rng, 300)
	db.Register(tbl)
	db.EnableSketches(0.5)
	q := Query{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales",
		Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str("apples")}}}}
	_, stats, ok := db.SketchLookup(q)
	if !ok || stats.SketchBuilds != 1 {
		t.Fatalf("first lookup: ok=%v stats=%+v, want one build", ok, stats)
	}
	_, stats, _ = db.SketchLookup(q)
	if stats.SketchBuilds != 0 {
		t.Fatalf("second lookup rebuilt: %+v", stats)
	}
	if err := tbl.AppendRow(Str("apples"), Str("region-0"), Int(1), Float(2)); err != nil {
		t.Fatal(err)
	}
	_, stats, _ = db.SketchLookup(q)
	if stats.SketchBuilds != 1 {
		t.Fatalf("lookup after append did not rebuild: %+v", stats)
	}
}

// randomGroupedScanQuery draws a candidate from the generalized
// shared-scan query class: 1–3 aggregates, optionally grouped by a
// single dictionary column (the dense accumulator path), an int column
// or a composite key (the hashed fallback). Predicates reuse
// randomScanQuery's never-matching constants so empty groups and empty
// results are exercised.
func randomGroupedScanQuery(rng *rand.Rand) Query {
	q := randomScanQuery(rng)
	extras := []Aggregate{
		{Func: AggCount},
		{Func: AggSum, Col: "price"},
		{Func: AggAvg, Col: "qty"},
		{Func: AggMin, Col: "qty"},
		{Func: AggMax, Col: "price"},
	}
	for n := rng.Intn(3); n > 0; n-- {
		q.Aggs = append(q.Aggs, extras[rng.Intn(len(extras))])
	}
	switch rng.Intn(5) {
	case 0: // ungrouped — multi-aggregate scalar rows still ride along
	case 1:
		q.GroupBy = []string{"cat"} // low-cardinality dictionary codes
	case 2:
		q.GroupBy = []string{"region"} // higher-cardinality dictionary codes
	case 3:
		q.GroupBy = []string{"qty"} // int key: hashed fallback
	default:
		q.GroupBy = []string{"cat", "qty"} // composite key: hashed fallback
	}
	return q
}

// sameResultBits demands bit-level agreement on full result shapes:
// identical columns, row counts, row order, group keys, and float64 bit
// patterns for every aggregate cell.
func sameResultBits(a, b Result) string {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Sprintf("cols %v vs %v", a.Cols, b.Cols)
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return fmt.Sprintf("col %d: %q vs %q", i, a.Cols[i], b.Cols[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("%d rows vs %d rows", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Sprintf("row %d width %d vs %d", i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.K != bv.K || av.S != bv.S || av.I != bv.I ||
				math.Float64bits(av.F) != math.Float64bits(bv.F) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, av, bv)
			}
		}
	}
	return ""
}

// TestSharedScanGroupedBitIdentical extends the core shared-scan
// property to the full query class: random mixes of grouped,
// composite-key and multi-aggregate candidates must come back
// bit-identical — including group order — to executing each query alone,
// exact and sampled.
func TestSharedScanGroupedBitIdentical(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(5000 + trial)))
			rows := rng.Intn(3000)
			db := NewDB()
			db.Register(randomScanTable(t, rng, rows))

			nq := rng.Intn(24) + 1
			queries := make([]Query, nq)
			var wantAggs int64
			for i := range queries {
				queries[i] = randomGroupedScanQuery(rng)
				wantAggs += int64(len(queries[i].Aggs))
			}

			shared, stats, err := db.ExecSharedResults(queries)
			if err != nil {
				t.Fatalf("ExecSharedResults: %v", err)
			}
			if stats.Scans != 1 || stats.Candidates != int64(nq) {
				t.Fatalf("stats = %+v, want 1 scan over %d candidates", stats, nq)
			}
			if stats.Aggregates != wantAggs {
				t.Fatalf("stats.Aggregates = %d, want %d", stats.Aggregates, wantAggs)
			}
			var wantGroups int64
			for i, q := range queries {
				res, err := db.Exec(q)
				if err != nil {
					t.Fatalf("Exec(%s): %v", q.SQL(), err)
				}
				if len(q.GroupBy) > 0 {
					wantGroups += int64(len(res.Rows))
				}
				if diff := sameResultBits(shared[i], res); diff != "" {
					t.Fatalf("exact mismatch on %s: %s", q.SQL(), diff)
				}
			}
			if stats.Groups != wantGroups {
				t.Fatalf("stats.Groups = %d, want %d", stats.Groups, wantGroups)
			}

			rate := 0.05 + rng.Float64()*0.9
			seed := rng.Uint64()
			sharedS, _, err := db.ExecSharedResultsSampled(queries, rate, seed)
			if err != nil {
				t.Fatalf("ExecSharedResultsSampled: %v", err)
			}
			for i, q := range queries {
				res, err := db.ExecSampled(q, rate, seed)
				if err != nil {
					t.Fatalf("ExecSampled(%s): %v", q.SQL(), err)
				}
				if diff := sameResultBits(sharedS[i], res); diff != "" {
					t.Fatalf("sampled (rate=%v) mismatch on %s: %s", rate, q.SQL(), diff)
				}
			}
		})
	}
}

// TestSharedScanScalarWrapperRejectsGrouped: the scalar ExecShared entry
// point must refuse grouped and multi-aggregate candidates rather than
// silently flattening them.
func TestSharedScanScalarWrapperRejectsGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 100))
	for _, q := range []Query{
		{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales", GroupBy: []string{"cat"}},
		{Aggs: []Aggregate{{Func: AggCount}, {Func: AggSum, Col: "qty"}}, Table: "sales"},
	} {
		if _, _, err := db.ExecShared([]Query{q, q}); err == nil {
			t.Errorf("ExecShared accepted non-scalar candidate %s", q.SQL())
		}
		if _, _, err := db.ExecSharedSampled([]Query{q, q}, 0.5, 1); err == nil {
			t.Errorf("ExecSharedSampled accepted non-scalar candidate %s", q.SQL())
		}
	}
}

// TestGroupedSketchMatchesSampledQuery: a grouped sketch answer must be
// bit-identical — rows, order, and float bits — to ExecSampled at the
// sketch rate and seed, with one build covering every constant of the
// template, and absent constants answering with zero rows.
func TestGroupedSketchMatchesSampledQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := NewDB()
	db.Register(randomScanTable(t, rng, 2500))
	db.EnableSketches(0.2)
	cats := []string{"apples", "oranges", "bananas", "grapes", "melons", "kiwis"}
	aggs := []Aggregate{{Func: AggCount}, {Func: AggSum, Col: "price"}, {Func: AggAvg, Col: "qty"}}
	builds := int64(0)
	for _, a := range aggs {
		for _, cat := range cats {
			q := Query{Aggs: []Aggregate{a}, Table: "sales", GroupBy: []string{"region"},
				Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str(cat)}}}}
			got, stats, ok := db.SketchLookupResult(q)
			if !ok {
				t.Fatalf("SketchLookupResult(%s) not ok", q.SQL())
			}
			builds += stats.SketchBuilds
			want, err := db.ExecSampled(q, 0.2, sketchSeed)
			if err != nil {
				t.Fatal(err)
			}
			if diff := sameResultBits(got, want); diff != "" {
				t.Fatalf("grouped sketch mismatch on %s: %s", q.SQL(), diff)
			}
			if cat == "kiwis" && len(got.Rows) != 0 {
				t.Fatalf("absent constant returned %d rows", len(got.Rows))
			}
		}
	}
	// One build per (aggregate, group column) template, shared across
	// constants — the property that makes trend first paints free.
	if builds != int64(len(aggs)) {
		t.Fatalf("got %d sketch builds, want %d (one per template)", builds, len(aggs))
	}
	// Scalar lookups must still refuse grouped queries.
	q := Query{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales", GroupBy: []string{"region"},
		Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str("apples")}}}}
	if _, _, ok := db.SketchLookup(q); ok {
		t.Fatal("scalar SketchLookup answered a grouped query")
	}
}

// TestGroupedSketchInvalidatedByAppend: appends bump the generation and
// force a grouped-sketch rebuild, and lookups never alias sketch-owned
// rows (mutating a returned result must not corrupt the cache).
func TestGroupedSketchInvalidatedByAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db := NewDB()
	tbl := randomScanTable(t, rng, 400)
	db.Register(tbl)
	db.EnableSketches(0.5)
	q := Query{Aggs: []Aggregate{{Func: AggCount}}, Table: "sales", GroupBy: []string{"region"},
		Preds: []Predicate{{Col: "cat", Op: OpEq, Values: []Value{Str("apples")}}}}
	first, stats, ok := db.SketchLookupResult(q)
	if !ok || stats.SketchBuilds != 1 {
		t.Fatalf("first lookup: ok=%v stats=%+v, want one build", ok, stats)
	}
	if len(first.Rows) > 0 {
		first.Rows[0][1] = Float(-1) // must not leak into the cache
	}
	second, stats, _ := db.SketchLookupResult(q)
	if stats.SketchBuilds != 0 {
		t.Fatalf("second lookup rebuilt: %+v", stats)
	}
	if len(second.Rows) > 0 && second.Rows[0][1].AsFloat() == -1 {
		t.Fatal("sketch cache aliases returned rows")
	}
	if err := tbl.AppendRow(Str("apples"), Str("region-0"), Int(1), Float(2)); err != nil {
		t.Fatal(err)
	}
	_, stats, _ = db.SketchLookupResult(q)
	if stats.SketchBuilds != 1 {
		t.Fatalf("lookup after append did not rebuild: %+v", stats)
	}
}
