package sqldb

import (
	"fmt"
	"sort"
)

// Column is a typed, columnar vector. String columns are dictionary
// encoded: distinct strings live once in dict and rows store int32 codes,
// which makes equality predicates a single integer comparison per row —
// the dominant operation in MUVE's workloads.
type Column struct {
	Name string
	Kind Kind

	ints   []int64
	floats []float64
	codes  []int32
	dict   []string
	dictID map[string]int32
}

// NewColumn returns an empty column of the given kind.
func NewColumn(name string, kind Kind) *Column {
	c := &Column{Name: name, Kind: kind}
	if kind == KindString {
		c.dictID = make(map[string]int32)
	}
	return c
}

// Len returns the number of rows stored.
func (c *Column) Len() int {
	switch c.Kind {
	case KindInt:
		return len(c.ints)
	case KindFloat:
		return len(c.floats)
	case KindString:
		return len(c.codes)
	}
	return 0
}

// Append adds a value, converting numerics as needed. It returns an error
// on kind mismatches that cannot be converted.
func (c *Column) Append(v Value) error {
	switch c.Kind {
	case KindInt:
		switch v.K {
		case KindInt:
			c.ints = append(c.ints, v.I)
		case KindFloat:
			c.ints = append(c.ints, int64(v.F))
		default:
			return fmt.Errorf("sqldb: cannot store %s in BIGINT column %q", v.K, c.Name)
		}
	case KindFloat:
		switch v.K {
		case KindInt:
			c.floats = append(c.floats, float64(v.I))
		case KindFloat:
			c.floats = append(c.floats, v.F)
		default:
			return fmt.Errorf("sqldb: cannot store %s in DOUBLE column %q", v.K, c.Name)
		}
	case KindString:
		if v.K != KindString {
			return fmt.Errorf("sqldb: cannot store %s in TEXT column %q", v.K, c.Name)
		}
		c.codes = append(c.codes, c.intern(v.S))
	default:
		return fmt.Errorf("sqldb: column %q has invalid kind", c.Name)
	}
	return nil
}

// intern returns the dictionary code for s, adding it when new.
func (c *Column) intern(s string) int32 {
	if id, ok := c.dictID[s]; ok {
		return id
	}
	id := int32(len(c.dict))
	c.dict = append(c.dict, s)
	c.dictID[s] = id
	return id
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	switch c.Kind {
	case KindInt:
		return Int(c.ints[i])
	case KindFloat:
		return Float(c.floats[i])
	case KindString:
		return Str(c.dict[c.codes[i]])
	}
	return Null()
}

// DistinctCount returns the number of distinct values. For string columns
// this is exact (dictionary size); for numeric columns it is computed on
// demand and cached by Table.Analyze.
func (c *Column) DistinctCount() int {
	switch c.Kind {
	case KindString:
		return len(c.dict)
	case KindInt:
		seen := make(map[int64]struct{}, 1024)
		for _, v := range c.ints {
			seen[v] = struct{}{}
		}
		return len(seen)
	case KindFloat:
		seen := make(map[float64]struct{}, 1024)
		for _, v := range c.floats {
			seen[v] = struct{}{}
		}
		return len(seen)
	}
	return 0
}

// DistinctInts returns the sorted distinct values of an integer column,
// capped at max entries (0 = unlimited). The NLQ layer indexes these as
// candidate numeric predicate constants.
func (c *Column) DistinctInts(max int) []int64 {
	if c.Kind != KindInt {
		return nil
	}
	seen := make(map[int64]struct{}, 1024)
	for _, v := range c.ints {
		seen[v] = struct{}{}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// DistinctStrings returns the sorted distinct values of a string column.
// The NLQ layer indexes these as candidate predicate constants.
func (c *Column) DistinctStrings() []string {
	if c.Kind != KindString {
		return nil
	}
	out := append([]string(nil), c.dict...)
	sort.Strings(out)
	return out
}

// code returns the dictionary code for s and whether it exists; only valid
// for string columns.
func (c *Column) code(s string) (int32, bool) {
	id, ok := c.dictID[s]
	return id, ok
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string

	cols   []*Column
	byName map[string]int
	rows   int

	// statistics filled by Analyze; used by the cost model
	analyzed  bool
	distincts map[string]int

	// gen counts mutations: any append bumps it, so derived artifacts
	// (aggregate sketches, cached answers) keyed by generation detect
	// staleness without comparing data.
	gen uint64
}

// NewTable creates an empty table with the given column definitions.
func NewTable(name string, defs ...ColumnDef) (*Table, error) {
	t := &Table{Name: name, byName: make(map[string]int)}
	for _, d := range defs {
		if _, dup := t.byName[d.Name]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %q", d.Name, name)
		}
		t.byName[d.Name] = len(t.cols)
		t.cols = append(t.cols, NewColumn(d.Name, d.Kind))
	}
	if len(t.cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %q needs at least one column", name)
	}
	return t, nil
}

// ColumnDef declares a column for NewTable.
type ColumnDef struct {
	Name string
	Kind Kind
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int { return t.rows }

// Columns returns the table's columns in declaration order.
func (t *Table) Columns() []*Column { return t.cols }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// Column returns the named column, or nil when absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// AppendRow appends one row; values must match the column count and kinds.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("sqldb: table %q has %d columns, got %d values",
			t.Name, len(t.cols), len(vals))
	}
	for i, v := range vals {
		if err := t.cols[i].Append(v); err != nil {
			// Roll back the partially appended row to keep columns aligned.
			for j := 0; j < i; j++ {
				t.cols[j].truncate(t.rows)
			}
			return err
		}
	}
	t.rows++
	t.gen++
	t.analyzed = false
	return nil
}

// Generation returns the table's mutation counter. Two calls returning
// the same value bracket a span during which the data did not change.
func (t *Table) Generation() uint64 { return t.gen }

// truncate shortens the column to n rows (internal rollback helper).
func (c *Column) truncate(n int) {
	switch c.Kind {
	case KindInt:
		c.ints = c.ints[:n]
	case KindFloat:
		c.floats = c.floats[:n]
	case KindString:
		c.codes = c.codes[:n]
	}
}

// Analyze collects per-column statistics (distinct counts) for the cost
// model, mirroring Postgres' ANALYZE. It is called lazily by the cost
// estimator; calling it eagerly after bulk load avoids a first-query stall.
func (t *Table) Analyze() {
	if t.analyzed {
		return
	}
	t.distincts = make(map[string]int, len(t.cols))
	for _, c := range t.cols {
		t.distincts[c.Name] = c.DistinctCount()
	}
	t.analyzed = true
}

// DistinctCount returns the cached distinct count for a column, running
// Analyze when statistics are stale.
func (t *Table) DistinctCount(col string) int {
	t.Analyze()
	return t.distincts[col]
}

// Row materializes row i as values (mostly for tests and small results).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}
