package sqldb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicAggregate(t *testing.T) {
	q, err := Parse("SELECT count(*) FROM flights")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "flights" || len(q.Aggs) != 1 || q.Aggs[0].Func != AggCount || q.Aggs[0].Col != "" {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseWhereEquality(t *testing.T) {
	q, err := Parse("select avg(delay) from flights where origin = 'JFK' and year = 2008")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %+v", q.Preds)
	}
	if q.Preds[0].Col != "origin" || q.Preds[0].Op != OpEq || q.Preds[0].Values[0].S != "JFK" {
		t.Errorf("pred0 = %+v", q.Preds[0])
	}
	if q.Preds[1].Values[0].K != KindInt || q.Preds[1].Values[0].I != 2008 {
		t.Errorf("pred1 = %+v", q.Preds[1])
	}
}

func TestParseInAndGroupBy(t *testing.T) {
	q, err := Parse("SELECT sum(delay), origin FROM flights WHERE origin IN ('JFK', 'LGA', 'EWR') GROUP BY origin")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Op != OpIn || len(q.Preds[0].Values) != 3 {
		t.Errorf("IN pred = %+v", q.Preds[0])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "origin" {
		t.Errorf("group by = %v", q.GroupBy)
	}
}

func TestParseBareWordLiteral(t *testing.T) {
	// Voice transcripts produce unquoted constants.
	q, err := Parse("SELECT count(*) FROM requests WHERE borough = Brooklyn")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Values[0].S != "Brooklyn" {
		t.Errorf("pred = %+v", q.Preds[0])
	}
}

func TestParseNumbersAndEscapes(t *testing.T) {
	q, err := Parse("SELECT max(x) FROM t WHERE a = -3.5 AND b = 'O''Neill' AND c = 1e3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Values[0].F != -3.5 {
		t.Errorf("float literal = %v", q.Preds[0].Values[0])
	}
	if q.Preds[1].Values[0].S != "O'Neill" {
		t.Errorf("escaped string = %q", q.Preds[1].Values[0].S)
	}
	if q.Preds[2].Values[0].F != 1000 {
		t.Errorf("exp literal = %v", q.Preds[2].Values[0])
	}
}

func TestParseAliasesAccepted(t *testing.T) {
	if _, err := Parse("SELECT count(*) AS n FROM t"); err != nil {
		t.Errorf("alias rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t",
		"SELECT count(* FROM t",
		"SELECT sum(*) FROM t",
		"SELECT count(*) t",
		"SELECT count(*) FROM t WHERE",
		"SELECT count(*) FROM t WHERE a >",
		"SELECT count(*) FROM t WHERE a = ",
		"SELECT count(*) FROM t WHERE a IN ()",
		"SELECT count(*) FROM t WHERE a IN ('x'",
		"SELECT count(*) FROM t GROUP BY",
		"SELECT count(*) FROM t trailing garbage",
		"SELECT a FROM t",                      // bare column without GROUP BY
		"SELECT count(*), a FROM t",            // ungrouped plain column
		"SELECT count(*) FROM t WHERE 'a' = 1", // literal where column expected
		"SELECT count(*) FROM t WHERE a = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestQuerySQLRoundTrip(t *testing.T) {
	// Property: rendering a random query to SQL and reparsing yields an
	// equivalent AST.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		back, err := Parse(q.SQL())
		if err != nil {
			t.Logf("SQL: %s err: %v", q.SQL(), err)
			return false
		}
		return queriesEqual(q, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomQuery builds a random but well-formed query AST.
func randomQuery(rng *rand.Rand) Query {
	cols := []string{"alpha", "beta", "gamma", "delta"}
	q := Query{Table: "t"}
	nAggs := 1 + rng.Intn(3)
	for i := 0; i < nAggs; i++ {
		f := AllAggFuncs[rng.Intn(len(AllAggFuncs))]
		col := cols[rng.Intn(len(cols))]
		if f == AggCount && rng.Intn(2) == 0 {
			col = ""
		}
		q.Aggs = append(q.Aggs, Aggregate{Func: f, Col: col})
	}
	nPreds := rng.Intn(3)
	for i := 0; i < nPreds; i++ {
		p := Predicate{Col: cols[rng.Intn(len(cols))]}
		if rng.Intn(2) == 0 {
			p.Op = OpEq
			p.Values = []Value{randomLiteral(rng)}
		} else {
			p.Op = OpIn
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				p.Values = append(p.Values, randomLiteral(rng))
			}
		}
		q.Preds = append(q.Preds, p)
	}
	if rng.Intn(3) == 0 {
		q.GroupBy = []string{cols[rng.Intn(len(cols))]}
	}
	return q
}

func randomLiteral(rng *rand.Rand) Value {
	switch rng.Intn(3) {
	case 0:
		return Int(rng.Int63n(1000) - 500)
	case 1:
		return Float(float64(rng.Intn(100)) + 0.5)
	default:
		words := []string{"brooklyn", "queens", "noise", "heat", "O'Neill", "a b"}
		return Str(words[rng.Intn(len(words))])
	}
}

func queriesEqual(a, b Query) bool {
	if a.Table != b.Table || len(a.Aggs) != len(b.Aggs) ||
		len(a.Preds) != len(b.Preds) || len(a.GroupBy) != len(b.GroupBy) {
		return false
	}
	for i := range a.Aggs {
		if a.Aggs[i] != b.Aggs[i] {
			return false
		}
	}
	for i := range a.Preds {
		pa, pb := a.Preds[i], b.Preds[i]
		if pa.Col != pb.Col || pa.Op != pb.Op || len(pa.Values) != len(pb.Values) {
			return false
		}
		for j := range pa.Values {
			va, vb := pa.Values[j], pb.Values[j]
			// Numeric literals may round-trip int<->float only if spelled
			// with a fraction; our renderer preserves kinds exactly.
			if va != vb && !(va.Equal(vb) && va.K != KindString && vb.K != KindString) {
				return false
			}
		}
	}
	for i := range a.GroupBy {
		if a.GroupBy[i] != b.GroupBy[i] {
			return false
		}
	}
	return true
}

func TestParseAggFuncSynonyms(t *testing.T) {
	cases := map[string]AggFunc{
		"COUNT": AggCount, "Sum": AggSum, "average": AggAvg,
		"mean": AggAvg, "maximum": AggMax, "minimum": AggMin,
	}
	for name, want := range cases {
		got, ok := ParseAggFunc(name)
		if !ok || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAggFunc("median"); ok {
		t.Error("median should be unsupported")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad SQL")
		}
	}()
	MustParse("not sql")
}

func TestLexerErrorPositions(t *testing.T) {
	_, err := Parse("SELECT count(*) FROM t WHERE a = ;")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("err = %v, want offset info", err)
	}
}
