package sqldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadCSV reads CSV data with a header row into a new table, inferring
// column kinds from the first data row: values parsing as integers become
// BIGINT, as floats DOUBLE, anything else TEXT. A later row that breaks an
// inferred numeric kind is an error — synthetic and exported data sets are
// type-consistent, and silent coercion would corrupt aggregates.
func LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sqldb: reading CSV header: %w", err)
	}
	cols := append([]string(nil), header...)
	first, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("sqldb: CSV %q has a header but no rows", name)
	}
	if err != nil {
		return nil, fmt.Errorf("sqldb: reading first CSV row: %w", err)
	}
	defs := make([]ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = ColumnDef{Name: strings.TrimSpace(c), Kind: inferKind(first[i])}
	}
	t, err := NewTable(name, defs...)
	if err != nil {
		return nil, err
	}
	appendRecord := func(rec []string, line int) error {
		if len(rec) != len(cols) {
			return fmt.Errorf("sqldb: CSV row %d has %d fields, want %d", line, len(rec), len(cols))
		}
		vals := make([]Value, len(rec))
		for i, f := range rec {
			v, err := parseField(f, defs[i].Kind)
			if err != nil {
				return fmt.Errorf("sqldb: CSV row %d column %q: %w", line, defs[i].Name, err)
			}
			vals[i] = v
		}
		return t.AppendRow(vals...)
	}
	if err := appendRecord(first, 2); err != nil {
		return nil, err
	}
	for line := 3; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sqldb: reading CSV row %d: %w", line, err)
		}
		if err := appendRecord(rec, line); err != nil {
			return nil, err
		}
	}
	t.Analyze()
	return t, nil
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns()))
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns() {
			rec[j] = c.Value(i).Display()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// inferKind guesses a column kind from a sample field.
func inferKind(field string) Kind {
	f := strings.TrimSpace(field)
	if f == "" {
		return KindString
	}
	if _, err := strconv.ParseInt(f, 10, 64); err == nil {
		return KindInt
	}
	if _, err := strconv.ParseFloat(f, 64); err == nil {
		return KindFloat
	}
	return KindString
}

// parseField converts a CSV field into a value of the given kind.
func parseField(field string, k Kind) (Value, error) {
	f := strings.TrimSpace(field)
	switch k {
	case KindInt:
		iv, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("%q is not an integer", field)
		}
		return Int(iv), nil
	case KindFloat:
		fv, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return Null(), fmt.Errorf("%q is not a number", field)
		}
		return Float(fv), nil
	default:
		return Str(field), nil
	}
}
