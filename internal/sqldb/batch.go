package sqldb

import (
	"fmt"
	"math"
	"math/bits"
)

// scanBatchRows is the number of rows one shared-scan batch covers. The
// batch is the unit of predicate vectorization: each distinct predicate
// fills one selection bitmap per batch, candidates AND the bitmaps they
// reference, and accumulation walks the surviving bits. 2048 rows keeps
// a batch's bitmaps (32 words each) and the touched column slices inside
// the L1 cache while amortizing the per-batch setup across enough rows.
const scanBatchRows = 2048

// bitmap is a selection vector over the rows of one batch: bit k set
// means batch-local row k survives. Word granularity makes predicate
// combination (AND) and population scans cheap.
type bitmap []uint64

// newBitmap returns a bitmap able to hold n bits.
func newBitmap(n int) bitmap {
	return make(bitmap, (n+63)/64)
}

// setAll sets the first n bits and clears every remaining bit, so
// trailing-word garbage can never leak into an AND chain.
func (b bitmap) setAll(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		b[full] = (uint64(1) << uint(rem)) - 1
		full++
	}
	for i := full; i < len(b); i++ {
		b[i] = 0
	}
}

// and intersects b with o in place over the first nWords words.
func (b bitmap) and(o bitmap, nWords int) {
	for i := 0; i < nWords; i++ {
		b[i] &= o[i]
	}
}

// copyFrom overwrites the first nWords words of b with o's.
func (b bitmap) copyFrom(o bitmap, nWords int) {
	copy(b[:nWords], o[:nWords])
}

// forEach calls f for every set bit among the first n, in increasing
// order — the property the shared scan relies on for bit-identical
// float aggregation against the row-at-a-time path.
func (b bitmap) forEach(n int, f func(k int)) {
	nWords := (n + 63) / 64
	for wi := 0; wi < nWords; wi++ {
		w := b[wi]
		base := wi << 6
		for w != 0 {
			k := base + bits.TrailingZeros64(w)
			f(k)
			w &= w - 1
		}
	}
}

// count returns the number of set bits among the first n.
func (b bitmap) count(n int) int {
	nWords := (n + 63) / 64
	total := 0
	for i := 0; i < nWords; i++ {
		total += bits.OnesCount64(b[i])
	}
	return total
}

// batchFiller writes match bits for rows [lo, lo+n) into dst: word i of
// dst receives the verdicts for batch-local rows [64i, 64i+64). Fillers
// overwrite every word that covers a row, so dst needs no prior clear;
// bits past n within the last word may be garbage and are masked out by
// ANDing against a base bitmap whose tail is zero.
type batchFiller func(dst bitmap, lo, n int)

// batchFilter is one predicate compiled for vectorized evaluation.
type batchFilter struct {
	fill batchFiller
}

// compileBatchFilter resolves a predicate into a per-batch vectorized
// filler, mirroring compilePredicate's semantics exactly: string
// constants become dictionary-code comparisons, multi-value INs become
// a bitset over codes, and the always/never classifications match the
// row-at-a-time compiler so both paths select identical rows.
func compileBatchFilter(t *Table, p Predicate) (f batchFilter, always, never bool, err error) {
	c := t.Column(p.Col)
	if c == nil {
		return batchFilter{}, false, false, fmt.Errorf("sqldb: unknown column %q", p.Col)
	}
	switch c.Kind {
	case KindString:
		codes := make(map[int32]struct{}, len(p.Values))
		for _, v := range p.Values {
			if v.K != KindString {
				continue // numeric literal never equals a string
			}
			if code, ok := c.code(v.S); ok {
				codes[code] = struct{}{}
			}
		}
		if len(codes) == 0 {
			return batchFilter{}, false, true, nil
		}
		col := c.codes
		if len(codes) == 1 {
			var want int32
			for k := range codes {
				want = k
			}
			return batchFilter{fill: func(dst bitmap, lo, n int) {
				fillCompare(dst, n, func(k int) bool { return col[lo+k] == want })
			}}, false, false, nil
		}
		member := make([]bool, len(c.dict))
		for k := range codes {
			member[k] = true
		}
		return batchFilter{fill: func(dst bitmap, lo, n int) {
			fillCompare(dst, n, func(k int) bool { return member[col[lo+k]] })
		}}, false, false, nil
	case KindInt:
		wants := make(map[int64]struct{}, len(p.Values))
		for _, v := range p.Values {
			switch v.K {
			case KindInt:
				wants[v.I] = struct{}{}
			case KindFloat:
				if v.F == math.Trunc(v.F) {
					wants[int64(v.F)] = struct{}{}
				}
			}
		}
		if len(wants) == 0 {
			return batchFilter{}, false, true, nil
		}
		col := c.ints
		if len(wants) == 1 {
			var want int64
			for k := range wants {
				want = k
			}
			return batchFilter{fill: func(dst bitmap, lo, n int) {
				fillCompare(dst, n, func(k int) bool { return col[lo+k] == want })
			}}, false, false, nil
		}
		return batchFilter{fill: func(dst bitmap, lo, n int) {
			fillCompare(dst, n, func(k int) bool {
				_, ok := wants[col[lo+k]]
				return ok
			})
		}}, false, false, nil
	case KindFloat:
		wants := make([]float64, 0, len(p.Values))
		for _, v := range p.Values {
			if v.K == KindInt || v.K == KindFloat {
				wants = append(wants, v.AsFloat())
			}
		}
		if len(wants) == 0 {
			return batchFilter{}, false, true, nil
		}
		col := c.floats
		return batchFilter{fill: func(dst bitmap, lo, n int) {
			fillCompare(dst, n, func(k int) bool {
				x := col[lo+k]
				for _, w := range wants {
					if x == w {
						return true
					}
				}
				return false
			})
		}}, false, false, nil
	}
	return batchFilter{}, false, false, fmt.Errorf("sqldb: predicate on invalid column %q", p.Col)
}

// fillCompare accumulates per-row verdicts into 64-bit words, flushing
// one word per 64 rows — the scalar core every filler shares.
func fillCompare(dst bitmap, n int, match func(k int) bool) {
	var w uint64
	for k := 0; k < n; k++ {
		if match(k) {
			w |= 1 << uint(k&63)
		}
		if k&63 == 63 {
			dst[k>>6] = w
			w = 0
		}
	}
	if n&63 != 0 {
		dst[(n-1)>>6] = w
	}
}

// fillSample writes the deterministic sample bitmap for rows [lo, lo+n):
// exactly the rows filterRowsRange keeps (rowHash at or below the rate
// threshold), including every trailing bit cleared, so it doubles as the
// AND base that masks filler tail garbage.
func fillSample(dst bitmap, lo, n int, seed, threshold uint64) {
	var w uint64
	for k := 0; k < n; k++ {
		if rowHash(uint64(lo+k), seed) <= threshold {
			w |= 1 << uint(k&63)
		}
		if k&63 == 63 {
			dst[k>>6] = w
			w = 0
		}
	}
	if n&63 != 0 {
		dst[(n-1)>>6] = w
	}
}
