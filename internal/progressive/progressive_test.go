package progressive

import (
	"context"
	"math"
	"testing"
	"time"

	"muve/internal/core"
	"muve/internal/nlq"
	"muve/internal/obs"
	"muve/internal/sqldb"
	"muve/internal/usermodel"
	"muve/internal/workload"
)

// session builds a realistic session over a 311 table with candidates
// from the NLQ pipeline. The correct candidate is the most likely one.
func session(t *testing.T, rows int) *Session {
	t.Helper()
	tbl, err := workload.Build(workload.NYC311, rows, 33)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.NewDB()
	db.Register(tbl)
	cat := nlq.BuildCatalog(tbl, 0)
	gen := nlq.NewGenerator(cat)
	cands, err := gen.Candidates(sqldb.MustParse(
		"SELECT avg(response_hours) FROM requests WHERE borough = 'Brooklyn'"))
	if err != nil {
		t.Fatal(err)
	}
	in := &core.Instance{
		Candidates: cands,
		Screen:     core.Screen{WidthPx: 1024, Rows: 1, PxPerBar: 48, PxPerChar: 7},
		Model:      usermodel.DefaultModel(),
	}
	return &Session{DB: db, Instance: in, Correct: 0, SampleSeed: 7}
}

func TestGreedyDefaultPresent(t *testing.T) {
	s := session(t, 4000)
	tr, err := NewGreedyDefault().Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(tr.Events))
	}
	if tr.Updates != 0 {
		t.Errorf("updates = %d", tr.Updates)
	}
	if tr.FTime == 0 || tr.FTime != tr.TTime {
		t.Errorf("default method: FTime %v should equal TTime %v", tr.FTime, tr.TTime)
	}
	if tr.InitialRelError != 0 {
		t.Errorf("exact method has rel error %v", tr.InitialRelError)
	}
	// All displayed bars carry values.
	for _, pl := range tr.Events[0].Multiplot.Plots() {
		for _, e := range pl.Entries {
			if e.Approximate {
				t.Error("exact method produced approximate bars")
			}
		}
	}
}

func TestIncPlotShowsCorrectEarly(t *testing.T) {
	s := session(t, 4000)
	tr, err := (IncPlot{}).Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) < 1 {
		t.Fatal("no events")
	}
	// Plots appear one at a time: event k has k plots (cumulative).
	for i, ev := range tr.Events {
		if got := ev.Multiplot.NumPlots(); got != i+1 {
			t.Errorf("event %d shows %d plots", i, got)
		}
	}
	// The most likely candidate (correct) is covered by the highest-mass
	// plot, so it must be visible in the very first event.
	if !visibleIn(tr.Events[0].Multiplot, s.Correct) {
		t.Error("correct result not in first incremental plot")
	}
	if tr.FTime > tr.TTime {
		t.Error("FTime after TTime")
	}
}

func TestApproxTwoPhases(t *testing.T) {
	s := session(t, 20000)
	tr, err := NewApprox(0.05).Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("events = %d, want 2 (approximate then exact)", len(tr.Events))
	}
	if !tr.Events[0].Approximate || tr.Events[1].Approximate {
		t.Error("phase marking wrong")
	}
	// All bars in the first event are flagged approximate.
	for _, pl := range tr.Events[0].Multiplot.Plots() {
		for _, e := range pl.Entries {
			if !math.IsNaN(e.Value) && !e.Approximate {
				t.Error("approximate phase produced exact bars")
			}
		}
	}
	// Error of initial viz is small but measured.
	if tr.InitialRelError < 0 || tr.InitialRelError > 0.5 {
		t.Errorf("initial rel error = %v", tr.InitialRelError)
	}
	if tr.Updates != 1 {
		t.Errorf("updates = %d, want 1", tr.Updates)
	}
}

func TestApproxDynamicPicksRate(t *testing.T) {
	s := session(t, 30000)
	a := NewApproxDynamic(200) // tiny budget -> small rate
	g := &core.GreedySolver{}
	m, _, err := g.Solve(s.Instance)
	if err != nil {
		t.Fatal(err)
	}
	rate := a.dynamicRate(s, m)
	if rate <= 0 || rate >= 1 {
		t.Errorf("dynamic rate = %v, want in (0,1)", rate)
	}
	// A huge budget keeps the run exact.
	big := NewApproxDynamic(1e12)
	if r := big.dynamicRate(s, m); r != 1 {
		t.Errorf("huge budget rate = %v, want 1", r)
	}
	tr, err := a.Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Errorf("App-D events = %d", len(tr.Events))
	}
}

func TestILPIncEmitsRefinements(t *testing.T) {
	s := session(t, 2000)
	tr, err := (ILPInc{Budget: 700 * time.Millisecond}).Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Error("events out of order")
		}
	}
	if tr.TTime <= 0 {
		t.Error("TTime not measured")
	}
}

func TestStandardMethodsRoster(t *testing.T) {
	ms := StandardMethods()
	want := []string{"Greedy", "ILP", "ILP-Inc", "Inc-Plot", "App-1%", "App-5%", "App-D"}
	if len(ms) != len(want) {
		t.Fatalf("methods = %d", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.Name(), want[i])
		}
	}
}

func TestTraceWithUnknownCorrect(t *testing.T) {
	s := session(t, 2000)
	s.Correct = -1
	tr, err := NewGreedyDefault().Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FTime != 0 {
		t.Errorf("FTime should stay 0 with unknown correct, got %v", tr.FTime)
	}
}

func TestRelError(t *testing.T) {
	mk := func(vals ...float64) core.Multiplot {
		var entries []core.Entry
		for i, v := range vals {
			entries = append(entries, core.Entry{Query: i, Value: v})
		}
		return core.Multiplot{Rows: [][]core.Plot{{{Entries: entries}}}}
	}
	// Exact match -> 0.
	if got := relError(mk(10, 20), mk(10, 20)); got != 0 {
		t.Errorf("relErr exact = %v", got)
	}
	// 10% and 20% off -> mean 15%.
	if got := relError(mk(11, 24), mk(10, 20)); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("relErr = %v, want 0.15", got)
	}
	// Bars absent from final are ignored; NaN ignored.
	if got := relError(mk(11, math.NaN()), mk(10, 20)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("relErr with NaN = %v", got)
	}
	if got := relError(core.Multiplot{}, mk(10)); got != 0 {
		t.Errorf("empty first viz = %v", got)
	}
}

func TestApproxFasterFirstPaintOnLargeData(t *testing.T) {
	// The headline claim of Figure 9: on large data, approximation shows
	// something useful much sooner than exact processing finishes. Compare
	// the approximate first-paint to the exact method's total time on the
	// same session.
	s := session(t, 400_000)
	exact, err := NewGreedyDefault().Present(s)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewApprox(0.01).Present(s)
	if err != nil {
		t.Fatal(err)
	}
	firstPaint := app.Events[0].At
	if firstPaint >= exact.TTime {
		t.Errorf("App-1%% first paint %v not faster than exact total %v", firstPaint, exact.TTime)
	}
}

func TestSessionDeterminism(t *testing.T) {
	// Same seed -> same approximate values.
	s1 := session(t, 10000)
	s2 := session(t, 10000)
	tr1, err := NewApprox(0.05).Present(s1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewApprox(0.05).Present(s2)
	if err != nil {
		t.Fatal(err)
	}
	p1 := tr1.Events[0].Multiplot.Plots()
	p2 := tr2.Events[0].Multiplot.Plots()
	if len(p1) != len(p2) {
		t.Fatal("plot count differs")
	}
	for i := range p1 {
		for j := range p1[i].Entries {
			a, b := p1[i].Entries[j].Value, p2[i].Entries[j].Value
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("approximate values differ: %v vs %v", a, b)
			}
		}
	}
}

func TestPresentErrorPropagation(t *testing.T) {
	// A session whose candidates reference a column the table lacks must
	// surface execution errors from every method, not panic or hang.
	tbl, err := workload.Build(workload.NYC311, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.NewDB()
	db.Register(tbl)
	in := &core.Instance{
		Candidates: []core.Candidate{
			{Query: sqldb.MustParse("SELECT sum(nope) FROM requests WHERE borough = 'Queens'"), Prob: 1},
		},
		Screen: core.Screen{WidthPx: 900, Rows: 1, PxPerBar: 48, PxPerChar: 7},
		Model:  usermodel.DefaultModel(),
	}
	sess := &Session{DB: db, Instance: in, Correct: 0}
	for _, m := range []Method{
		NewGreedyDefault(),
		IncPlot{},
		NewApprox(0.05),
		ILPInc{Budget: 100 * time.Millisecond},
	} {
		if _, err := m.Present(sess); err == nil {
			t.Errorf("%s: expected execution error", m.Name())
		}
	}
}

func TestILPDefaultMethod(t *testing.T) {
	s := session(t, 2000)
	tr, err := NewILPDefault(200 * time.Millisecond).Present(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Errorf("ILP default events = %d", len(tr.Events))
	}
	if tr.TTime <= 0 {
		t.Error("TTime missing")
	}
}

// countUpdateSpans partitions a trace's progressive.update spans into
// real updates and noop-final ones, checking required attrs on each.
func countUpdateSpans(t *testing.T, tr *obs.Trace) (real, noop int) {
	t.Helper()
	for _, sp := range tr.Spans() {
		if sp.Stage != "progressive.update" {
			continue
		}
		var hasUpdate, hasRate, isNoop bool
		for _, a := range sp.Attrs {
			switch a.Key {
			case "update":
				hasUpdate = true
			case "sample_rate":
				hasRate = true
			case "noop":
				isNoop = a.Int != 0
			}
		}
		if !hasUpdate || !hasRate {
			t.Errorf("update span missing attrs: %+v", sp.Attrs)
		}
		if isNoop {
			noop++
		} else {
			real++
		}
	}
	return real, noop
}

func TestUpdateSpansExactlyOncePerEvent(t *testing.T) {
	cases := []struct {
		name   string
		method Method
	}{
		{"IncPlot", IncPlot{}},
		{"Approx", NewApprox(0.05)},
		{"ILPInc", ILPInc{Budget: 500 * time.Millisecond}},
		{"Default", NewGreedyDefault()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := session(t, 4000)
			otr := obs.NewTrace("test")
			s.Ctx = obs.WithTrace(context.Background(), otr)
			tr, err := tc.method.Present(s)
			if err != nil {
				t.Fatal(err)
			}
			otr.Finish()
			real, noop := countUpdateSpans(t, otr)
			// Every visualization update the user sees has exactly one
			// child span; suppressed no-op final refinements are the only
			// extras and are flagged.
			if real != len(tr.Events) {
				t.Errorf("%d non-noop update spans for %d events", real, len(tr.Events))
			}
			if tc.name != "ILPInc" && noop != 0 {
				t.Errorf("%d noop spans outside ILPInc", noop)
			}
		})
	}
}
