// Package progressive implements MUVE's presentation strategies (paper
// Section 8.2 and Figure 5): the default all-at-once presentation, the
// processing-cost-aware ILP variant, incremental optimization (ILP-Inc),
// incremental plotting (Inc-Plot), and approximate processing with fixed
// (App-1%, App-5%) or dynamically chosen (App-D) sample rates. A run
// produces a trace of timestamped visualization events from which the
// experiments derive F-Time (time until the correct result is first
// visible), T-Time (time until the final multiplot), interactivity-
// threshold misses, and the relative error of initial approximations.
package progressive

import (
	"context"
	"fmt"
	"math"
	"time"

	"muve/internal/core"
	"muve/internal/merge"
	"muve/internal/obs"
	"muve/internal/resilience"
	"muve/internal/sqldb"
)

// Session is one voice-query answering task.
type Session struct {
	DB       *sqldb.DB
	Instance *core.Instance
	// Correct indexes the candidate representing the user's true intent,
	// or -1 when unknown (F-Time is then left zero).
	Correct int
	// SampleSeed keeps approximate runs reproducible.
	SampleSeed uint64
	// Ctx, when non-nil, cancels the presentation: methods checkpoint
	// between planning and each execution round, and forward the
	// context into the solvers. Nil means run to completion.
	Ctx context.Context

	// scanStats accumulates shared-scan work across every execution
	// round of the presentation; finishTrace copies it onto the trace.
	scanStats sqldb.ScanStats
}

// Context returns the session context, defaulting to Background.
func (s *Session) Context() context.Context {
	if s.Ctx == nil {
		return context.Background()
	}
	return s.Ctx
}

// Event is one visualization shown to the user.
type Event struct {
	At          time.Duration
	Multiplot   core.Multiplot
	Approximate bool
}

// Trace is the full output of presenting one query.
type Trace struct {
	Events []Event
	// FTime is the time until the correct query's result was first
	// visible, at least as an approximation; zero when it never was (or
	// Correct was unknown).
	FTime time.Duration
	// TTime is the time until the final visualization.
	TTime time.Duration
	// InitialRelError is the mean relative error of the first event's bar
	// values against the final exact values (zero for exact-first
	// methods).
	InitialRelError float64
	// Updates counts visualization changes after the first paint — the
	// churn that hurts clarity ratings in the paper's second user study.
	Updates int
	// EarlyStop records why refinement stopped before exhausting its
	// budget: "optimal" (optimum proven), "cancelled" (context), or ""
	// when the method simply ran to completion / spent the full budget.
	EarlyStop string
	// SampleRate is the sample rate of the first emitted visualization:
	// 1 for exact-first methods, the approximation rate for App-* runs.
	SampleRate float64
	// WarmStart reports how the planner's warm-start hint fared
	// (hit|partial|infeasible|none); empty for methods or runs without a
	// hint. See core.WarmStartResult.
	WarmStart core.WarmStartResult
	// Scan totals the shared-scan executor's work across all execution
	// rounds: table passes, rows covered, candidates answered, predicate
	// sharing, and sketch activity.
	Scan sqldb.ScanStats
}

// Method is one presentation strategy.
type Method interface {
	Name() string
	Present(s *Session) (*Trace, error)
}

// recordSolverStats attaches one planning call's counters to a "solver"
// span: which planner ran, the achieved cost, and — for ILP-backed
// planners — the internal search effort (branch-and-bound nodes, LP
// relaxations, simplex iterations, incumbent updates). All setters are
// nil-safe, so untraced sessions pay only the nil check.
func recordSolverStats(sp *obs.Span, name string, st core.Stats) {
	sp.SetStr("solver", name).
		SetFloat("cost", st.Cost).
		SetBool("optimal", st.Optimal).
		SetBool("timed_out", st.TimedOut)
	if st.Rounds > 0 {
		sp.SetInt("rounds", int64(st.Rounds))
	}
	if st.LPSolves > 0 {
		sp.SetInt("bb_nodes", int64(st.Nodes)).
			SetInt("lp_solves", int64(st.LPSolves)).
			SetInt("simplex_iters", int64(st.SimplexIters)).
			SetInt("incumbents", int64(st.Incumbents))
	}
	if st.Workers > 0 {
		sp.SetInt("workers", int64(st.Workers)).
			SetInt("steals", int64(st.Steals)).
			SetInt("shared_prunes", int64(st.SharedPrunes))
	}
	if st.Sequences > 0 {
		sp.SetInt("sequences", int64(st.Sequences))
	}
	if st.WarmStart != "" {
		sp.SetStr("warm_start", string(st.WarmStart))
	}
}

// updateSpan opens a "progressive.update" child span for one
// visualization update: its duration covers the query execution that
// produced the update, and its attrs record which update it was (0 is
// the first paint) and at what sample rate it ran. Nil-safe like every
// span, so untraced sessions pay only the nil check.
func updateSpan(s *Session, idx int, rate float64) *obs.Span {
	return obs.StartSpan(s.Context(), "progressive.update").
		SetInt("update", int64(idx)).
		SetFloat("sample_rate", rate)
}

// displayedQueries collects the candidate queries a multiplot shows,
// deduplicated, with a candidate-index → query-position map.
func displayedQueries(s *Session, m core.Multiplot) ([]sqldb.Query, map[int]int) {
	var queries []sqldb.Query
	pos := make(map[int]int)
	for _, row := range m.Rows {
		for _, pl := range row {
			for _, e := range pl.Entries {
				if _, ok := pos[e.Query]; !ok {
					pos[e.Query] = len(queries)
					queries = append(queries, s.Instance.Candidates[e.Query].Query)
				}
			}
		}
	}
	return queries, pos
}

// applyResults writes computed values back into a copy of the multiplot.
func applyResults(m core.Multiplot, pos map[int]int, res map[int]merge.Result, approx bool) core.Multiplot {
	out := core.Multiplot{Rows: make([][]core.Plot, len(m.Rows))}
	for ri, row := range m.Rows {
		for _, pl := range row {
			np := core.Plot{Template: pl.Template, Entries: append([]core.Entry(nil), pl.Entries...)}
			for ei := range np.Entries {
				r := res[pos[np.Entries[ei].Query]]
				if r.Valid {
					np.Entries[ei].Value = r.Value
				} else {
					np.Entries[ei].Value = math.NaN()
				}
				np.Entries[ei].Approximate = approx
			}
			out.Rows[ri] = append(out.Rows[ri], np)
		}
	}
	return out
}

// recordScanStats attaches one execution round's shared-scan counters to
// its "scan" span and folds them into the session total.
func recordScanStats(s *Session, sp *obs.Span, st sqldb.ScanStats, rate float64) {
	s.scanStats.Add(st)
	sp.SetInt("candidates", st.Candidates).
		SetInt("scans", st.Scans).
		SetInt("rows", st.Rows).
		SetInt("batches", st.Batches).
		SetInt("preds", st.Predicates).
		SetInt("shared_preds", st.SharedPredicates).
		SetFloat("sample_rate", rate)
	if st.Aggregates > 0 {
		sp.SetInt("aggs", st.Aggregates)
	}
	if st.Groups > 0 {
		sp.SetInt("groups", st.Groups)
	}
	if st.SketchHits > 0 {
		sp.SetInt("sketch_hits", st.SketchHits).
			SetInt("sketch_builds", st.SketchBuilds)
	}
}

// fillValues executes the multiplot's queries through the shared-scan
// executor — every displayed candidate aggregate from one table pass —
// and writes results into the entries. sampleRate in (0,1) makes all
// values approximate.
func fillValues(s *Session, m core.Multiplot, sampleRate float64) (core.Multiplot, error) {
	// Cancellation checkpoint: execution is the expensive half of a
	// presentation round, so an abandoned request stops here.
	if err := s.Context().Err(); err != nil {
		return m, err
	}
	queries, pos := displayedQueries(s, m)
	if len(queries) == 0 {
		return m, nil
	}
	plan := merge.BuildSharedPlan(queries)
	sp := obs.StartSpan(s.Context(), "scan")
	var (
		res map[int]merge.Result
		st  sqldb.ScanStats
		err error
	)
	obs.Do(s.Context(), "scan", func(ctx context.Context) {
		res, st, err = plan.Execute(s.DB, sampleRate, s.SampleSeed)
	})
	if err != nil {
		sp.SetErr(err).End()
		return m, fmt.Errorf("progressive: executing multiplot queries: %w", err)
	}
	effRate := 1.0
	if sampleRate > 0 && sampleRate < 1 {
		effRate = sampleRate
	}
	recordScanStats(s, sp, st, effRate)
	sp.End()
	return applyResults(m, pos, res, effRate < 1), nil
}

// fillValuesSketch answers the multiplot entirely from precomputed
// aggregate sketches — no table pass at steady state. ok is false when
// any displayed candidate cannot be sketched; the caller then falls back
// to a real (sampled or exact) scan.
func fillValuesSketch(s *Session, m core.Multiplot) (core.Multiplot, bool) {
	if err := s.Context().Err(); err != nil {
		return m, false
	}
	queries, pos := displayedQueries(s, m)
	if len(queries) == 0 {
		return m, false
	}
	plan := merge.BuildSharedPlan(queries)
	sp := obs.StartSpan(s.Context(), "scan").SetBool("sketch", true)
	var (
		res map[int]merge.Result
		st  sqldb.ScanStats
		ok  bool
	)
	obs.Do(s.Context(), "scan", func(ctx context.Context) {
		res, st, ok = plan.ExecuteSketch(s.DB)
	})
	if !ok {
		sp.SetBool("noop", true).End()
		return m, false
	}
	recordScanStats(s, sp, st, s.DB.SketchRate())
	sp.End()
	return applyResults(m, pos, res, true), true
}

// finishTrace derives FTime/TTime/Updates/InitialRelError from events.
func finishTrace(s *Session, events []Event) *Trace {
	tr := &Trace{Events: events, Scan: s.scanStats}
	if len(events) == 0 {
		return tr
	}
	tr.TTime = events[len(events)-1].At
	tr.Updates = len(events) - 1
	if s.Correct >= 0 {
		for _, ev := range events {
			if visibleIn(ev.Multiplot, s.Correct) {
				tr.FTime = ev.At
				break
			}
		}
	}
	tr.InitialRelError = relError(events[0].Multiplot, events[len(events)-1].Multiplot)
	return tr
}

// visibleIn reports whether candidate qi's result is shown with a value.
func visibleIn(m core.Multiplot, qi int) bool {
	for _, row := range m.Rows {
		for _, pl := range row {
			for _, e := range pl.Entries {
				if e.Query == qi && !math.IsNaN(e.Value) {
					return true
				}
			}
		}
	}
	return false
}

// relError is the mean relative error of bar values in `first` against the
// same bars in `final`. Bars absent from the first visualization do not
// contribute (the metric follows Figure 10: error "of the initial
// visualization").
func relError(first, final core.Multiplot) float64 {
	finalVal := make(map[int]float64)
	for _, row := range final.Rows {
		for _, pl := range row {
			for _, e := range pl.Entries {
				if !math.IsNaN(e.Value) {
					finalVal[e.Query] = e.Value
				}
			}
		}
	}
	var sum float64
	var n int
	for _, row := range first.Rows {
		for _, pl := range row {
			for _, e := range pl.Entries {
				exact, ok := finalVal[e.Query]
				if !ok || math.IsNaN(e.Value) {
					continue
				}
				denom := math.Abs(exact)
				if denom < 1 {
					denom = 1
				}
				sum += math.Abs(e.Value-exact) / denom
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Default is the baseline presentation: plan with the given solver, run
// all queries (merged), show one final multiplot. With a GreedySolver this
// is the paper's "Greedy" method; with a processing-cost-aware ILP it is
// "ILP".
type Default struct {
	planner func(ctx context.Context, in *core.Instance) (core.Multiplot, core.Stats, error)
	name    string
}

// NewGreedyDefault builds the paper's "Greedy" method.
func NewGreedyDefault() *Default {
	return NewGreedyWorkers(0)
}

// NewGreedyWorkers builds the "Greedy" method with an explicit scan
// parallelism (see core.GreedySolver.Workers); 0 is NewGreedyDefault. A
// per-request allocation in the context (resilience.WithSolverWorkers)
// overrides the configured value, so an engine's worker split applies
// to greedy planning too.
func NewGreedyWorkers(workers int) *Default {
	return &Default{name: "Greedy", planner: func(ctx context.Context, in *core.Instance) (core.Multiplot, core.Stats, error) {
		// A fresh solver per call keeps the method safe to share
		// across concurrent sessions.
		g := &core.GreedySolver{Ctx: ctx, Workers: ctxWorkers(ctx, workers)}
		return g.Solve(in)
	}}
}

// ctxWorkers resolves the solver parallelism for one planning call: a
// per-request allocation carried in the context wins over the method's
// configured default.
func ctxWorkers(ctx context.Context, configured int) int {
	if w := resilience.SolverWorkers(ctx); w > 0 {
		return w
	}
	return configured
}

// NewILPDefault builds the paper's "ILP" method: default presentation with
// ILP optimization that integrates processing cost into the objective.
func NewILPDefault(timeout time.Duration) *Default {
	return NewILPWarm(timeout, nil)
}

// NewILPWarm builds the "ILP" method with an optional prior-multiplot
// warm-start hint (the previous utterance's answer in a voice session);
// a nil hint is NewILPDefault. The greedy seed stays on either way, so
// a stale or disjoint hint never makes the answer worse than greedy.
func NewILPWarm(timeout time.Duration, hint *core.Multiplot) *Default {
	return NewILPWorkers(timeout, hint, 0)
}

// NewILPWorkers is NewILPWarm with an explicit branch-and-bound worker
// count (the Gurobi Threads substitution; see core.ILPSolver.
// Parallelism). 0 uses GOMAXPROCS. A per-request allocation in the
// context (resilience.WithSolverWorkers) overrides the configured
// value, which is how the serving engine's worker split reaches the
// solver.
func NewILPWorkers(timeout time.Duration, hint *core.Multiplot, workers int) *Default {
	return &Default{name: "ILP", planner: func(ctx context.Context, in *core.Instance) (core.Multiplot, core.Stats, error) {
		s := &core.ILPSolver{Timeout: timeout, WarmStart: true, Hint: hint, Parallelism: ctxWorkers(ctx, workers), Ctx: ctx}
		return s.Solve(in)
	}}
}

// Name identifies the method.
func (d *Default) Name() string { return d.name }

// Present runs the default strategy.
func (d *Default) Present(s *Session) (*Trace, error) {
	start := time.Now()
	sp := obs.StartSpan(s.Context(), "solver")
	if err := resilience.Inject(s.Context(), "solver"); err != nil {
		sp.SetErr(err).End()
		return nil, err
	}
	var (
		m   core.Multiplot
		st  core.Stats
		err error
	)
	obs.Do(s.Context(), "solver", func(ctx context.Context) {
		m, st, err = d.planner(ctx, s.Instance)
	})
	if err != nil {
		sp.SetErr(err).End()
		return nil, err
	}
	recordSolverStats(sp, d.name, st)
	sp.End()
	var events []Event
	// Sketch-first: when the DB keeps aggregate sketches and every
	// displayed candidate resolves from one, paint an instant
	// approximate multiplot before the exact fill touches the table.
	if sk := s.DB.SketchRate(); sk > 0 {
		usp := updateSpan(s, 0, sk).SetBool("sketch", true)
		if skm, ok := fillValuesSketch(s, m); ok {
			usp.End()
			events = append(events, Event{At: time.Since(start), Multiplot: skm, Approximate: true})
		} else {
			usp.SetBool("noop", true).End()
		}
	}
	usp := updateSpan(s, len(events), 1)
	filled, err := fillValues(s, m, 0)
	if err != nil {
		usp.SetErr(err).End()
		return nil, err
	}
	usp.End()
	events = append(events, Event{At: time.Since(start), Multiplot: filled})
	tr := finishTrace(s, events)
	tr.SampleRate = 1
	tr.WarmStart = st.WarmStart
	if st.Optimal {
		tr.EarlyStop = "optimal"
	}
	return tr, nil
}

// IncPlot is incremental plotting: "generates single plots sequentially.
// After each newly generated plot, the visualization is updated." Plots
// are generated in decreasing order of covered probability so the likely
// results appear first.
type IncPlot struct{}

// Name identifies the method.
func (IncPlot) Name() string { return "Inc-Plot" }

// Present runs incremental plotting.
func (IncPlot) Present(s *Session) (*Trace, error) {
	start := time.Now()
	sp := obs.StartSpan(s.Context(), "solver")
	var (
		m   core.Multiplot
		st  core.Stats
		err error
	)
	obs.Do(s.Context(), "solver", func(ctx context.Context) {
		g := &core.GreedySolver{Ctx: ctx}
		m, st, err = g.Solve(s.Instance)
	})
	if err != nil {
		sp.SetErr(err).End()
		return nil, err
	}
	recordSolverStats(sp, "Greedy", st)
	sp.End()
	// Order plots by covered probability mass.
	type ref struct {
		row, idx int
		mass     float64
	}
	var refs []ref
	for ri, row := range m.Rows {
		for pi, pl := range row {
			mass := 0.0
			for _, e := range pl.Entries {
				mass += s.Instance.Candidates[e.Query].Prob
			}
			refs = append(refs, ref{row: ri, idx: pi, mass: mass})
		}
	}
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].mass > refs[j-1].mass; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
	shown := core.Multiplot{Rows: make([][]core.Plot, len(m.Rows))}
	var events []Event
	for ui, rf := range refs {
		pl := m.Rows[rf.row][rf.idx]
		one := core.Multiplot{Rows: [][]core.Plot{{pl}}}
		usp := updateSpan(s, ui, 1)
		filled, err := fillValues(s, one, 0)
		if err != nil {
			usp.SetErr(err).End()
			return nil, err
		}
		usp.End()
		shown.Rows[rf.row] = append(shown.Rows[rf.row], filled.Rows[0][0])
		snapshot := core.Multiplot{}
		for _, r := range shown.Rows {
			if len(r) > 0 {
				snapshot.Rows = append(snapshot.Rows, append([]core.Plot(nil), r...))
			}
		}
		events = append(events, Event{At: time.Since(start), Multiplot: snapshot})
	}
	if len(events) == 0 {
		events = []Event{{At: time.Since(start)}}
	}
	tr := finishTrace(s, events)
	tr.SampleRate = 1
	return tr, nil
}

// Approx presents an approximate multiplot computed on a data sample
// first, then replaces it with the exact one ("while users consider the
// approximate visualization, processing continues in the background on the
// full data set").
type Approx struct {
	// Rate is the fixed sample rate (e.g. 0.01 for App-1%); when 0 the
	// rate is chosen dynamically per TargetCost (App-D).
	Rate float64
	// TargetCost is the optimizer-cost budget App-D aims the sampled pass
	// at (cost units; see sqldb's cost model).
	TargetCost float64
	name       string
}

// NewApprox builds App-<rate> (paper: App-1%%, App-5%%).
func NewApprox(rate float64) *Approx {
	return &Approx{Rate: rate, name: fmt.Sprintf("App-%g%%", rate*100)}
}

// NewApproxDynamic builds App-D, which "dynamically estimates the sample
// size to use in order to meet the current interactivity threshold".
func NewApproxDynamic(targetCost float64) *Approx {
	return &Approx{TargetCost: targetCost, name: "App-D"}
}

// Name identifies the method.
func (a *Approx) Name() string { return a.name }

// Present runs approximate-first presentation.
func (a *Approx) Present(s *Session) (*Trace, error) {
	start := time.Now()
	sp := obs.StartSpan(s.Context(), "solver")
	var (
		m   core.Multiplot
		st  core.Stats
		err error
	)
	obs.Do(s.Context(), "solver", func(ctx context.Context) {
		g := &core.GreedySolver{Ctx: ctx}
		m, st, err = g.Solve(s.Instance)
	})
	if err != nil {
		sp.SetErr(err).End()
		return nil, err
	}
	recordSolverStats(sp, "Greedy", st)
	sp.End()
	rate := a.Rate
	if rate <= 0 {
		rate = a.dynamicRate(s, m)
	}
	var events []Event
	if rate < 1 {
		// Sketch-first: when every displayed candidate resolves from a
		// precomputed aggregate sketch, the first paint costs no table
		// pass at all; otherwise fall back to the sampled shared scan.
		if sk := s.DB.SketchRate(); sk > 0 {
			usp := updateSpan(s, 0, sk).SetBool("sketch", true)
			if skm, ok := fillValuesSketch(s, m); ok {
				usp.End()
				events = append(events, Event{At: time.Since(start), Multiplot: skm, Approximate: true})
				rate = sk // the first paint's effective rate
			} else {
				usp.SetBool("noop", true).End()
			}
		}
		if len(events) == 0 {
			usp := updateSpan(s, 0, rate)
			approxM, err := fillValues(s, m, rate)
			if err != nil {
				usp.SetErr(err).End()
				return nil, err
			}
			usp.End()
			events = append(events, Event{At: time.Since(start), Multiplot: approxM, Approximate: true})
		}
	}
	usp := updateSpan(s, len(events), 1)
	exact, err := fillValues(s, m, 0)
	if err != nil {
		usp.SetErr(err).End()
		return nil, err
	}
	usp.End()
	events = append(events, Event{At: time.Since(start), Multiplot: exact})
	tr := finishTrace(s, events)
	tr.SampleRate = rate
	return tr, nil
}

// dynamicRate picks the largest sample rate whose estimated cost fits the
// target budget.
func (a *Approx) dynamicRate(s *Session, m core.Multiplot) float64 {
	target := a.TargetCost
	if target <= 0 {
		target = 2000
	}
	// Estimate full cost of the displayed queries via the merge plan.
	var queries []sqldb.Query
	seen := map[int]bool{}
	for _, row := range m.Rows {
		for _, pl := range row {
			for _, e := range pl.Entries {
				if !seen[e.Query] {
					seen[e.Query] = true
					queries = append(queries, s.Instance.Candidates[e.Query].Query)
				}
			}
		}
	}
	if len(queries) == 0 {
		return 1
	}
	plan := merge.BuildPlan(s.DB, queries)
	full, err := plan.EstimatedCost(s.DB)
	if err != nil || full <= 0 {
		return 1
	}
	rate := target / full
	if rate >= 1 {
		return 1
	}
	if rate < 0.001 {
		rate = 0.001
	}
	return rate
}

// ILPInc wraps incremental ILP optimization (Section 5.4) as a
// presentation method: each improved multiplot is executed and shown,
// which "implies repeated processing" (the paper's explanation for its
// overhead on large data).
type ILPInc struct {
	// Budget bounds total optimization time (default 1s).
	Budget time.Duration
	// Hint, when non-nil, warm-starts the first sequence with a prior
	// multiplot (see core.IncrementalILP.Hint).
	Hint *core.Multiplot
	// Workers is the branch-and-bound parallelism for every sequence
	// (see core.IncrementalILP.Parallelism); 0 uses GOMAXPROCS. A
	// per-request allocation in the context overrides it.
	Workers int
}

// Name identifies the method.
func (ILPInc) Name() string { return "ILP-Inc" }

// Present runs incremental optimization with per-update execution.
func (i ILPInc) Present(s *Session) (*Trace, error) {
	start := time.Now()
	budget := i.Budget
	if budget <= 0 {
		budget = time.Second
	}
	inc := core.DefaultIncremental(budget)
	inc.Hint = i.Hint
	inc.Parallelism = ctxWorkers(s.Context(), i.Workers)
	var events []Event
	var execErr error
	// The span covers the full incremental run, interleaved query
	// execution included: that is what the user actually waits for.
	sp := obs.StartSpan(s.Context(), "solver")
	var st core.Stats
	var err error
	obs.Do(s.Context(), "solver", func(ctx context.Context) {
		inc.Ctx = ctx
		_, st, err = inc.Solve(s.Instance, func(u core.Update) {
			if execErr != nil {
				return
			}
			// One child span per improved multiplot the user sees; a
			// no-op final update (same multiplot again) ends its span
			// with noop=true and emits no event, keeping non-noop spans
			// 1:1 with events.
			usp := updateSpan(s, len(events), 1).SetBool("final", u.Final)
			filled, ferr := fillValues(s, u.Multiplot, 0)
			if ferr != nil {
				execErr = ferr
				usp.SetErr(ferr).End()
				return
			}
			if u.Final && len(events) > 0 && filled.String() == events[len(events)-1].Multiplot.String() {
				usp.SetBool("noop", true).End()
				return
			}
			events = append(events, Event{At: time.Since(start), Multiplot: filled})
			usp.End()
		})
	})
	if err != nil {
		sp.SetErr(err).End()
		return nil, err
	}
	if execErr != nil {
		sp.SetErr(execErr).End()
		return nil, execErr
	}
	recordSolverStats(sp, inc.Name(), st)
	sp.End()
	if len(events) == 0 {
		events = []Event{{At: time.Since(start)}}
	}
	tr := finishTrace(s, events)
	tr.SampleRate = 1
	tr.WarmStart = st.WarmStart
	switch {
	case st.Optimal:
		tr.EarlyStop = "optimal"
	case s.Ctx != nil && s.Ctx.Err() != nil:
		tr.EarlyStop = "cancelled"
	}
	return tr, nil
}

// StandardMethods returns the method set compared in Figures 9, 11 and 13,
// in paper order: Greedy, ILP, ILP-Inc, Inc-Plot, App-1%, App-5%, App-D.
func StandardMethods() []Method {
	return []Method{
		NewGreedyDefault(),
		NewILPDefault(time.Second),
		ILPInc{Budget: time.Second},
		IncPlot{},
		NewApprox(0.01),
		NewApprox(0.05),
		NewApproxDynamic(2000),
	}
}
