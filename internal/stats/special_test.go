package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.25, 0.25},
		{1, 1, 0.75, 0.75},
		// I_x(2,2) = x^2 (3 - 2x).
		{2, 2, 0.5, 0.5},
		{2, 2, 0.25, 0.25 * 0.25 * (3 - 0.5)},
		// I_x(0.5, 0.5) = (2/pi) * asin(sqrt(x)).
		{0.5, 0.5, 0.5, 0.5},
		{0.5, 0.5, 0.25, 2 / math.Pi * math.Asin(0.5)},
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%v,%v,%v): %v", c.a, c.b, c.x, err)
		}
		if !almostEq(got, c.want, 1e-10) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v, _ := RegIncBeta(3, 4, 0); v != 0 {
		t.Errorf("I_0 = %v, want 0", v)
	}
	if v, _ := RegIncBeta(3, 4, 1); v != 1 {
		t.Errorf("I_1 = %v, want 1", v)
	}
	if _, err := RegIncBeta(3, 4, -0.1); err == nil {
		t.Error("expected error for x < 0")
	}
	if _, err := RegIncBeta(0, 4, 0.5); err == nil {
		t.Error("expected error for a <= 0")
	}
}

func TestRegIncBetaMonotoneInX(t *testing.T) {
	// Property: I_x(a,b) is non-decreasing in x for fixed a, b.
	f := func(a8, b8 uint8, x1, x2 float64) bool {
		a := 0.5 + float64(a8%40)/4
		b := 0.5 + float64(b8%40)/4
		x1 = math.Abs(math.Mod(x1, 1))
		x2 = math.Abs(math.Mod(x2, 1))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1, err1 := RegIncBeta(a, b, x1)
		v2, err2 := RegIncBeta(a, b, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 <= v2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// Property: I_x(a,b) = 1 - I_{1-x}(b,a).
	f := func(a8, b8 uint8, x float64) bool {
		a := 0.5 + float64(a8%40)/4
		b := 0.5 + float64(b8%40)/4
		x = math.Abs(math.Mod(x, 1))
		v1, err1 := RegIncBeta(a, b, x)
		v2, err2 := RegIncBeta(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(v1, 1-v2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// With 1 degree of freedom, the t distribution is Cauchy:
	// CDF(t) = 1/2 + atan(t)/pi.
	for _, tv := range []float64{-3, -1, 0, 0.5, 2, 10} {
		want := 0.5 + math.Atan(tv)/math.Pi
		got := StudentTCDF(tv, 1)
		if !almostEq(got, want, 1e-10) {
			t.Errorf("StudentTCDF(%v, 1) = %v, want %v", tv, got, want)
		}
	}
	// Symmetric around 0 for any nu.
	if got := StudentTCDF(0, 7); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("StudentTCDF(0, 7) = %v, want 0.5", got)
	}
	// Classical table value: t_{0.975, 10} ~= 2.228.
	if got := StudentTCDF(2.228, 10); !almostEq(got, 0.975, 1e-3) {
		t.Errorf("StudentTCDF(2.228, 10) = %v, want ~0.975", got)
	}
}

func TestStudentTCDFInfinities(t *testing.T) {
	if got := StudentTCDF(math.Inf(1), 5); got != 1 {
		t.Errorf("CDF(+inf) = %v, want 1", got)
	}
	if got := StudentTCDF(math.Inf(-1), 5); got != 0 {
		t.Errorf("CDF(-inf) = %v, want 0", got)
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	for _, nu := range []float64{1, 3, 10, 30, 100} {
		for _, p := range []float64{0.025, 0.1, 0.5, 0.9, 0.975} {
			q := StudentTQuantile(p, nu)
			back := StudentTCDF(q, nu)
			if !almostEq(back, p, 1e-6) {
				t.Errorf("nu=%v p=%v: CDF(Quantile(p)) = %v", nu, p, back)
			}
		}
	}
}

func TestStudentTQuantileTableValues(t *testing.T) {
	// Standard t-table critical values for two-sided 95% intervals.
	cases := []struct{ nu, want float64 }{
		{1, 12.706},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
	}
	for _, c := range cases {
		got := StudentTQuantile(0.975, c.nu)
		if !almostEq(got, c.want, 5e-3) {
			t.Errorf("t(0.975, %v) = %v, want %v", c.nu, got, c.want)
		}
	}
}

func TestStudentTQuantileInvalid(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if !math.IsNaN(StudentTQuantile(p, 5)) {
			t.Errorf("expected NaN for p=%v", p)
		}
	}
	if !math.IsNaN(StudentTQuantile(0.5, 0)) {
		t.Error("expected NaN for nu=0")
	}
}
