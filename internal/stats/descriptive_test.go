package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty slice should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic example is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median of empty slice should be NaN")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestConfidenceIntervalKnown(t *testing.T) {
	// n=10, sd known: delta = t(0.975, 9) * sd / sqrt(10).
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ci := ConfidenceInterval95(xs)
	if !almostEq(ci.Mean, 5.5, 1e-12) {
		t.Errorf("CI mean = %v", ci.Mean)
	}
	wantDelta := StudentTQuantile(0.975, 9) * StdDev(xs) / math.Sqrt(10)
	if !almostEq(ci.Delta, wantDelta, 1e-9) {
		t.Errorf("CI delta = %v, want %v", ci.Delta, wantDelta)
	}
	if !almostEq(ci.Lo(), 5.5-wantDelta, 1e-9) || !almostEq(ci.Hi(), 5.5+wantDelta, 1e-9) {
		t.Error("CI bounds inconsistent")
	}
}

func TestConfidenceIntervalDegenerate(t *testing.T) {
	ci := ConfidenceInterval95([]float64{42})
	if ci.Mean != 42 || ci.Delta != 0 {
		t.Errorf("single-sample CI = %+v", ci)
	}
	if !math.IsNaN(ConfidenceInterval95(nil).Mean) {
		t.Error("empty CI mean should be NaN")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Statistical property: a 95% CI computed from normal samples should
	// contain the true mean roughly 95% of the time. Use a wide acceptance
	// band to keep the test robust.
	rng := rand.New(rand.NewSource(7))
	const trials = 2000
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 12)
		for j := range xs {
			xs[j] = 3 + rng.NormFloat64()
		}
		ci := ConfidenceInterval95(xs)
		if ci.Lo() <= 3 && 3 <= ci.Hi() {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("coverage = %v, want ~0.95", rate)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 4) != 0.25 {
		t.Error("Ratio(1,4)")
	}
	if Ratio(3, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-9 && m <= Max(clean)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
