package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	c, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.R, 1, 1e-12) || !almostEq(c.R2, 1, 1e-12) {
		t.Errorf("R = %v, R2 = %v, want 1", c.R, c.R2)
	}
	if c.P > 1e-9 {
		t.Errorf("P = %v, want ~0", c.P)
	}
	// Perfect anti-correlation.
	for i := range ys {
		ys[i] = -ys[i]
	}
	c, err = Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.R, -1, 1e-12) {
		t.Errorf("R = %v, want -1", c.R)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed example.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2, 1, 4, 3, 6, 5}
	c, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// sxy = 14.5, sxx = syy = 17.5 -> r = 14.5/17.5 = 29/35.
	want := 29.0 / 35.0
	if !almostEq(c.R, want, 1e-12) {
		t.Errorf("R = %v, want %v", c.R, want)
	}
	if !almostEq(c.R2, want*want, 1e-12) {
		t.Errorf("R2 = %v, want %v", c.R2, want*want)
	}
	// p via t = r*sqrt(4/(1-r^2)) with df=4.
	if !almostEq(c.P, 0.0416, 1e-3) {
		t.Errorf("P = %v, want ~0.0416", c.P)
	}
}

func TestPearsonNoCorrelationHighP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Independent noise: p should usually be large; check it is not tiny.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	c, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c.P < 0.001 {
		t.Errorf("independent noise produced p = %v", c.P)
	}
	if c.Significant(0.05) && c.P >= 0.05 {
		t.Error("Significant inconsistent with P")
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("expected too-few-samples error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("expected zero-variance error")
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i]*0.5 + rng.NormFloat64()
		}
		a, err1 := Pearson(xs, ys)
		b, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(a.R, b.R, 1e-12) && almostEq(a.P, b.P, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonRInUnitIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = rng.NormFloat64() * 10
		}
		c, err := Pearson(xs, ys)
		if err != nil {
			return true // zero-variance draw; fine
		}
		return c.R >= -1 && c.R <= 1 && c.P >= 0 && c.P <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
	if !almostEq(f.At(10), 21, 1e-12) {
		t.Errorf("At(10) = %v", f.At(10))
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error for constant x")
	}
	if _, err := FitLine([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestFitMultiRecoversPlane(t *testing.T) {
	// y = 3*x0 - 2*x1 + 5, exactly.
	rng := rand.New(rand.NewSource(9))
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		xs[i] = []float64{x0, x1}
		ys[i] = 3*x0 - 2*x1 + 5
	}
	f, err := FitMulti(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Coeffs[0], 3, 1e-8) || !almostEq(f.Coeffs[1], -2, 1e-8) || !almostEq(f.Intercept, 5, 1e-8) {
		t.Errorf("fit = %+v", f)
	}
	if !almostEq(f.At([]float64{1, 1}), 6, 1e-8) {
		t.Errorf("At = %v", f.At([]float64{1, 1}))
	}
}

func TestFitMultiErrors(t *testing.T) {
	if _, err := FitMulti(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FitMulti([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged input")
	}
	// Collinear features make the normal equations singular.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := FitMulti(xs, []float64{1, 2, 3}); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestFitLineMatchesPearsonSign(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = rng.NormFloat64()
		}
		fit, err1 := FitLine(xs, ys)
		cor, err2 := Pearson(xs, ys)
		if err1 != nil || err2 != nil {
			return true
		}
		if math.Abs(cor.R) < 1e-9 {
			return true
		}
		return (fit.Slope > 0) == (cor.R > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
