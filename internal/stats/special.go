// Package stats provides the statistical machinery used throughout MUVE:
// descriptive statistics with Student-t confidence intervals, Pearson
// correlation with two-tailed p-values, and simple least-squares fitting.
//
// The paper's evaluation reports 95% confidence bounds for all averaged
// plots and a Pearson correlation analysis (Table 1) for the user study;
// this package reproduces both computations from first principles using
// only the standard library.
package stats

import (
	"errors"
	"math"
)

// maxBetaIter bounds the continued-fraction evaluation in betacf.
const maxBetaIter = 300

// betaEps is the convergence tolerance for the incomplete beta continued
// fraction.
const betaEps = 3e-14

// ErrNoConverge is returned when an iterative special-function evaluation
// fails to converge. With the argument ranges used by this package
// (degrees of freedom >= 1, x in [0,1]) it should never occur.
var ErrNoConverge = errors.New("stats: special function iteration did not converge")

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1]. It underlies the Student-t CDF used for
// p-values and confidence intervals.
func RegIncBeta(a, b, x float64) (float64, error) {
	if x < 0 || x > 1 || math.IsNaN(x) {
		return math.NaN(), errors.New("stats: RegIncBeta requires x in [0,1]")
	}
	if a <= 0 || b <= 0 {
		return math.NaN(), errors.New("stats: RegIncBeta requires a, b > 0")
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	// Use the continued fraction directly when it converges quickly,
	// otherwise use the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
	if x < (a+1)/(a+b+2) {
		cf, err := betacf(a, b, x)
		if err != nil {
			return math.NaN(), err
		}
		return front * cf / a, nil
	}
	cf, err := betacf(b, a, 1-x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - front*cf/b, nil
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxBetaIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < betaEps {
			return h, nil
		}
	}
	return h, ErrNoConverge
}

// StudentTCDF returns P(T <= t) for a Student-t distribution with nu
// degrees of freedom.
func StudentTCDF(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := nu / (nu + t*t)
	ib, err := RegIncBeta(nu/2, 0.5, x)
	if err != nil {
		return math.NaN()
	}
	if t >= 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// StudentTQuantile returns the t value such that P(T <= t) = p for a
// Student-t distribution with nu degrees of freedom. It inverts the CDF by
// bisection, which is plenty fast for the handful of quantiles MUVE needs
// (one per confidence interval).
func StudentTQuantile(p, nu float64) float64 {
	if p <= 0 || p >= 1 || nu <= 0 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+math.Abs(lo)) {
			break
		}
	}
	return (lo + hi) / 2
}
