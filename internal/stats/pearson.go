package stats

import (
	"errors"
	"math"
)

// Correlation holds the result of a Pearson correlation analysis between a
// visualization feature and measured user disambiguation time, matching the
// quantities the paper reports in Table 1.
type Correlation struct {
	R  float64 // Pearson correlation coefficient
	R2 float64 // coefficient of determination (R squared)
	P  float64 // two-tailed p-value under H0: no linear relationship
	N  int     // number of paired samples
}

// Significant reports whether the correlation is statistically significant
// at the given alpha (the paper uses the common cutoff of 0.05).
func (c Correlation) Significant(alpha float64) bool {
	return c.P < alpha
}

// Pearson computes the Pearson correlation between xs and ys together with
// the two-tailed p-value from the exact t-distribution with n-2 degrees of
// freedom. It returns an error when the slices differ in length, contain
// fewer than three samples, or one of them has zero variance (the
// correlation is then undefined).
func Pearson(xs, ys []float64) (Correlation, error) {
	if len(xs) != len(ys) {
		return Correlation{}, errors.New("stats: Pearson requires equal-length samples")
	}
	n := len(xs)
	if n < 3 {
		return Correlation{}, errors.New("stats: Pearson requires at least 3 samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return Correlation{}, errors.New("stats: Pearson undefined for zero-variance input")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against tiny floating-point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	p := pearsonPValue(r, n)
	return Correlation{R: r, R2: r * r, P: p, N: n}, nil
}

// pearsonPValue returns the two-tailed p-value for correlation r over n
// samples via the exact transform t = r*sqrt((n-2)/(1-r^2)).
func pearsonPValue(r float64, n int) float64 {
	nu := float64(n - 2)
	if r == 1 || r == -1 {
		return 0
	}
	t := r * math.Sqrt(nu/(1-r*r))
	// Two-tailed: P(|T| >= |t|) = 2 * (1 - CDF(|t|)).
	p := 2 * (1 - StudentTCDF(math.Abs(t), nu))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// LinearFit holds the least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
}

// FitLine computes the ordinary least-squares regression of ys on xs.
// The user-model calibration (Section 4.2) uses it to infer the per-bar and
// per-plot reading costs from simulated study data.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: FitLine requires equal-length samples")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: FitLine requires at least 2 samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLine undefined for constant x")
	}
	slope := sxy / sxx
	return LinearFit{Slope: slope, Intercept: my - slope*mx}, nil
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// MultiFit holds coefficients of a multivariate least-squares fit
// y = Coeffs[0]*x0 + Coeffs[1]*x1 + ... + Intercept.
type MultiFit struct {
	Coeffs    []float64
	Intercept float64
}

// FitMulti computes an ordinary least-squares fit of ys on the feature rows
// xs (each row is one observation) by solving the normal equations with
// Gaussian elimination. The user-model calibration fits disambiguation time
// on (#bars read, #plots read) jointly to recover c_B and c_P.
func FitMulti(xs [][]float64, ys []float64) (MultiFit, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return MultiFit{}, errors.New("stats: FitMulti requires matching non-empty samples")
	}
	d := len(xs[0])
	for _, row := range xs {
		if len(row) != d {
			return MultiFit{}, errors.New("stats: FitMulti requires rectangular input")
		}
	}
	// Augment with the intercept column.
	k := d + 1
	// Normal equations: (X^T X) beta = X^T y.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k+1)
	}
	for r := 0; r < n; r++ {
		row := make([]float64, k)
		copy(row, xs[r])
		row[d] = 1
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][k] += row[i] * ys[r]
		}
	}
	beta, err := solveGauss(a)
	if err != nil {
		return MultiFit{}, err
	}
	return MultiFit{Coeffs: beta[:d], Intercept: beta[d]}, nil
}

// At evaluates the fitted hyperplane at feature vector x.
func (f MultiFit) At(x []float64) float64 {
	y := f.Intercept
	for i, c := range f.Coeffs {
		y += c * x[i]
	}
	return y
}

// solveGauss solves the linear system encoded as an augmented matrix using
// Gaussian elimination with partial pivoting.
func solveGauss(a [][]float64) ([]float64, error) {
	k := len(a)
	for col := 0; col < k; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, errors.New("stats: singular system in least-squares fit")
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := a[r][k]
		for c := r + 1; c < k; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
