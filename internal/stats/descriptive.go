package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1),
// or NaN when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or NaN for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// CI describes a symmetric confidence interval around a sample mean.
type CI struct {
	Mean  float64 // sample mean
	Delta float64 // half-width: the interval is [Mean-Delta, Mean+Delta]
	N     int     // sample count
}

// Lo returns the lower bound of the interval.
func (c CI) Lo() float64 { return c.Mean - c.Delta }

// Hi returns the upper bound of the interval.
func (c CI) Hi() float64 { return c.Mean + c.Delta }

// ConfidenceInterval returns the two-sided confidence interval for the mean
// of xs at the given confidence level (e.g. 0.95), using the Student-t
// distribution with n-1 degrees of freedom. For fewer than two samples the
// half-width is zero: there is no spread to estimate.
//
// The paper shows 95% confidence bounds for every plot reporting arithmetic
// averages; experiment runners call this with level=0.95.
func ConfidenceInterval(xs []float64, level float64) CI {
	n := len(xs)
	if n == 0 {
		return CI{Mean: math.NaN()}
	}
	m := Mean(xs)
	if n < 2 {
		return CI{Mean: m, N: n}
	}
	sd := StdDev(xs)
	t := StudentTQuantile(0.5+level/2, float64(n-1))
	return CI{
		Mean:  m,
		Delta: t * sd / math.Sqrt(float64(n)),
		N:     n,
	}
}

// ConfidenceInterval95 is shorthand for ConfidenceInterval(xs, 0.95).
func ConfidenceInterval95(xs []float64) CI {
	return ConfidenceInterval(xs, 0.95)
}

// Ratio returns num/den, or 0 when den is zero. Experiment code uses it for
// timeout ratios and threshold-miss ratios, where an empty denominator means
// "no test cases", which the paper's plots render as zero.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
