package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable time source for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedEmptyWindow(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(time.Second, 8)
	w.SetClock(clk.Now)

	st := w.Window(5 * time.Second)
	if st.Count != 0 {
		t.Fatalf("empty window count = %d, want 0", st.Count)
	}
	if q := st.Quantile(0.99); q != 0 {
		t.Errorf("empty window p99 = %v, want 0", q)
	}
	if r := st.Rate(); r != 0 {
		t.Errorf("empty window rate = %v, want 0", r)
	}
	if f := st.FracUnder(time.Millisecond); f != 1 {
		t.Errorf("empty window FracUnder = %v, want 1 (no traffic burns nothing)", f)
	}
}

func TestWindowedRotationExpiresOldSlots(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(time.Second, 4)
	w.SetClock(clk.Now)

	w.Observe(10 * time.Millisecond)
	w.Observe(10 * time.Millisecond)
	if got := w.Window(2 * time.Second).Count; got != 2 {
		t.Fatalf("fresh window count = %d, want 2", got)
	}

	// Two slots later the observations are outside a 2s window (current
	// partial slot + one full slot) but still inside the ring's span.
	clk.Advance(3 * time.Second)
	if got := w.Window(2 * time.Second).Count; got != 0 {
		t.Errorf("after 3s, 2s window count = %d, want 0", got)
	}
	if got := w.Window(4 * time.Second).Count; got != 2 {
		t.Errorf("after 3s, 4s window count = %d, want 2", got)
	}

	// Past the ring span the slot is reused and reset: nothing remains.
	clk.Advance(5 * time.Second)
	w.Observe(20 * time.Millisecond) // forces rotation of the current slot
	if got := w.Window(4 * time.Second).Count; got != 1 {
		t.Errorf("after wrap, window count = %d, want 1 (old slots expired)", got)
	}
}

func TestWindowedPartialWindowRate(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(time.Second, 120)
	w.SetClock(clk.Now)

	// 10 observations over 10 seconds of life; a 1m window has only
	// covered 10s, so the rate divides by 10s, not 60s.
	for i := 0; i < 10; i++ {
		w.Observe(5 * time.Millisecond)
		clk.Advance(time.Second)
	}
	st := w.Window(time.Minute)
	if st.Count != 10 {
		t.Fatalf("window count = %d, want 10", st.Count)
	}
	if st.Covered != 10*time.Second {
		t.Fatalf("covered = %v, want 10s", st.Covered)
	}
	if r := st.Rate(); r < 0.99 || r > 1.01 {
		t.Errorf("partial-window rate = %v, want ~1/s (not diluted to 1/6)", r)
	}
}

func TestWindowedQuantileAcrossSlots(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(time.Second, 16)
	w.SetClock(clk.Now)

	// 90 fast observations then 10 slow ones in a later slot: p50 fast,
	// p95+ slow.
	for i := 0; i < 90; i++ {
		w.Observe(200 * time.Microsecond)
	}
	clk.Advance(2 * time.Second)
	for i := 0; i < 10; i++ {
		w.Observe(100 * time.Millisecond)
	}
	st := w.Window(10 * time.Second)
	if st.Count != 100 {
		t.Fatalf("window count = %d, want 100", st.Count)
	}
	if p50 := st.Quantile(0.50); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want sub-millisecond", p50)
	}
	if p99 := st.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want >=50ms", p99)
	}
	if f := st.FracUnder(time.Millisecond); f < 0.85 || f > 0.95 {
		t.Errorf("FracUnder(1ms) = %v, want ~0.9", f)
	}
}

func TestWindowedClampsToRingSpan(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowed(time.Second, 4)
	w.SetClock(clk.Now)
	w.Observe(time.Millisecond)
	// Requesting far more than the ring holds must not panic and still
	// sees what the ring retains.
	if got := w.Window(time.Hour).Count; got != 1 {
		t.Errorf("oversized window count = %d, want 1", got)
	}
}

// TestWindowedExemplarRacingRotation drives observations with exemplars
// from many goroutines while the clock advances across slot boundaries,
// so rotations and exemplar writes interleave. Run under -race; the
// documented contract is only that racing observations may land in the
// slot's new epoch, never a torn read or crash.
func TestWindowedExemplarRacingRotation(t *testing.T) {
	var tick atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	w := NewWindowed(time.Millisecond, 4)
	w.SetClock(func() time.Time {
		return base.Add(time.Duration(tick.Load()) * 100 * time.Microsecond)
	})

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tick.Add(1) // every observation nudges time; rotations happen mid-traffic
				w.ObserveExemplar(time.Duration(i%7)*time.Millisecond, "tr")
				if i%17 == 0 {
					_ = w.Window(2 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	// The merged full-span window sees some recent traffic; exact counts
	// depend on how rotations landed.
	if got := w.Window(w.Span()).Count; got == 0 {
		t.Error("no observations survived in the ring")
	}
}
