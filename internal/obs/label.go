package obs

import (
	"context"
	"runtime/pprof"
)

// Do runs f with a pprof "stage" label attached to the context and the
// current goroutine, so CPU and alloc profiles decompose by pipeline
// stage. Goroutines started inside f inherit the label set; code that
// spawns workers from a stored context (the ILP worker pool, the
// parallel greedy scan) re-applies labels explicitly via pprof.Do.
//
// The labeled context is passed to f and must be the one propagated
// onward — labels ride the context, not the goroutine, across
// boundaries that switch goroutines.
func Do(ctx context.Context, stage string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("stage", stage), f)
}

// Label reads one pprof label off the context ("" when absent) — for
// tests asserting label propagation.
func Label(ctx context.Context, key string) string {
	v, _ := pprof.Label(ctx, key)
	return v
}
