package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestGoStatsWriteProm(t *testing.T) {
	g := NewGoStats()
	var b bytes.Buffer
	g.WriteProm(&b)
	out := b.String()
	if !strings.Contains(out, "muve_go_") {
		t.Fatalf("no muve_go_ series in output:\n%s", out)
	}
	if !strings.Contains(out, "muve_go_goroutines") {
		t.Errorf("goroutine gauge missing:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "muve_go_") {
			t.Errorf("unprefixed series line %q", line)
		}
	}
}

func TestGoStatsSnapshot(t *testing.T) {
	g := NewGoStats()
	snap := g.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if v, ok := snap["/sched/goroutines:goroutines"]; !ok || v < 1 {
		t.Errorf("goroutines gauge = %v (present %v), want >= 1", v, ok)
	}
}
