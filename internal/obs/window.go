package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Windowed layers sliding-window views over Histogram: observations
// land in a ring of fixed-duration slots, each slot a full log-bucketed
// histogram, and a window of any length up to the ring's span is read
// by merging the slots it covers. This turns the since-boot cumulative
// histograms into live p50/p95/p99 and request rates over the last
// 1m/5m/1h — the raw material for SLO burn rates.
//
// The hot path is one atomic stamp check plus a Histogram.Observe;
// rotation (reclaiming the oldest slot for the new epoch) takes a
// mutex, at most once per slot duration. An observation racing a
// rotation can land in the slot's new epoch — a bounded error of the
// racing observations, invisible at window granularity.
type Windowed struct {
	slotDur time.Duration
	slots   []Histogram
	stamps  []atomic.Int64 // epoch currently owned by the slot; -1 = empty
	mu      sync.Mutex     // serializes rotations
	now     func() time.Time
	birth   time.Time
}

// NewWindowed builds a ring of slots covering slots*slotDur of history.
// To read a window of duration W, the ring must hold at least
// W/slotDur+1 slots (the current slot is always partial).
func NewWindowed(slotDur time.Duration, slots int) *Windowed {
	if slotDur <= 0 {
		slotDur = 10 * time.Second
	}
	if slots < 2 {
		slots = 2
	}
	w := &Windowed{
		slotDur: slotDur,
		slots:   make([]Histogram, slots),
		stamps:  make([]atomic.Int64, slots),
		now:     time.Now,
	}
	w.birth = w.now()
	for i := range w.stamps {
		w.stamps[i].Store(-1)
	}
	return w
}

// SetClock injects a time source for deterministic tests. Call before
// any Observe; it also re-pins the birth time.
func (w *Windowed) SetClock(now func() time.Time) {
	w.now = now
	w.birth = now()
}

// Span is the total history the ring can cover.
func (w *Windowed) Span() time.Duration {
	return time.Duration(len(w.slots)) * w.slotDur
}

// epoch numbers slot intervals since the unix epoch.
func (w *Windowed) epoch(t time.Time) int64 {
	return t.UnixNano() / int64(w.slotDur)
}

// slot returns the histogram owning the current epoch, rotating the
// ring position to it first when a previous epoch still holds it.
func (w *Windowed) slot() *Histogram {
	e := w.epoch(w.now())
	i := int(e % int64(len(w.slots)))
	if w.stamps[i].Load() == e {
		return &w.slots[i]
	}
	w.mu.Lock()
	if w.stamps[i].Load() != e {
		w.slots[i].Reset()
		w.stamps[i].Store(e)
	}
	w.mu.Unlock()
	return &w.slots[i]
}

// Observe records one duration into the current slot.
func (w *Windowed) Observe(d time.Duration) { w.slot().Observe(d) }

// ObserveExemplar records one duration with a trace exemplar.
func (w *Windowed) ObserveExemplar(d time.Duration, traceID string) {
	w.slot().ObserveExemplar(d, traceID)
}

// WindowStat is a merged snapshot of the slots covering one sliding
// window: bucket counts plus how much wall-clock the window actually
// covers (less than Window right after boot).
type WindowStat struct {
	// Window is the requested window length.
	Window time.Duration
	// Covered is the wall-clock actually covered: min(Window, age of the
	// series). Rates divide by Covered so a 10s-old process doesn't
	// report a 1m rate diluted 6×.
	Covered time.Duration
	// Count and Sum aggregate the covered slots' observations.
	Count uint64
	Sum   time.Duration

	counts [NumBuckets + 1]uint64
}

// Window merges the slots covering the trailing window of duration d.
// Requests longer than the ring's span are clamped to it.
func (w *Windowed) Window(d time.Duration) WindowStat {
	now := w.now()
	cur := w.epoch(now)
	n := int((d + w.slotDur - 1) / w.slotDur)
	if n < 1 {
		n = 1
	}
	// The current slot is partial, so covering d needs one extra slot;
	// never more than the ring holds.
	if n+1 <= len(w.slots) {
		n++
	} else {
		n = len(w.slots)
	}
	st := WindowStat{Window: d}
	oldest := cur - int64(n) + 1
	for i := range w.slots {
		e := w.stamps[i].Load()
		if e < oldest || e > cur {
			continue
		}
		counts, sum, count := w.slots[i].Snapshot()
		for j, c := range counts {
			st.counts[j] += c
		}
		st.Sum += time.Duration(sum)
		st.Count += count
	}
	covered := now.Sub(w.birth)
	if covered > d {
		covered = d
	}
	if covered < 0 {
		covered = 0
	}
	st.Covered = covered
	return st
}

// Quantile interpolates the window's q-quantile (0 on an empty window).
func (s WindowStat) Quantile(q float64) time.Duration {
	return quantileOf(s.counts, s.Count, q)
}

// Rate is observations per second over the covered interval (0 when
// nothing has been covered yet).
func (s WindowStat) Rate() float64 {
	if s.Covered <= 0 {
		return 0
	}
	return float64(s.Count) / s.Covered.Seconds()
}

// Mean is the window's average observation (0 when empty).
func (s WindowStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// FracUnder estimates the fraction of the window's observations at or
// below threshold (1 on an empty window: no traffic, nothing over).
func (s WindowStat) FracUnder(threshold time.Duration) float64 {
	return fracUnder(s.counts, s.Count, threshold)
}
