package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func handlerRing() *Ring {
	r := NewRing(4)
	tr := NewTrace("/ask")
	tr.ID = "r-7"
	tr.RecordSpan("nlq", 0, time.Millisecond, Int("candidates", 20))
	tr.RecordSpan("solver", time.Millisecond, 3*time.Millisecond)
	tr.Finish()
	r.Add(tr)
	return r
}

func TestHandlerJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(handlerRing()).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var out []struct {
		Name  string `json:"name"`
		ID    string `json:"id"`
		Spans []struct {
			Stage string         `json:"stage"`
			DurUS int64          `json:"dur_us"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out) != 1 || out[0].Name != "/ask" || out[0].ID != "r-7" {
		t.Fatalf("traces = %+v", out)
	}
	if len(out[0].Spans) != 2 || out[0].Spans[0].Stage != "nlq" || out[0].Spans[0].DurUS != 1000 {
		t.Errorf("spans = %+v", out[0].Spans)
	}
	if out[0].Spans[0].Attrs["candidates"] != float64(20) {
		t.Errorf("attrs = %v", out[0].Spans[0].Attrs)
	}
}

func TestHandlerText(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(handlerRing()).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{"trace /ask id=r-7", "nlq", "candidates=20"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in %q", want, body)
		}
	}
}

func TestHandlerChrome(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(handlerRing()).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("chrome export invalid JSON: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Error("missing traceEvents")
	}
}

func TestHandlerLimitAndEmpty(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(handlerRing()).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=0", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("n=0 body = %q", rec.Body.String())
	}
	// A nil ring (tracing disabled) serves an empty list, not an error.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("nil ring body = %q", rec.Body.String())
	}
}
