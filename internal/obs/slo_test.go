package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("e2e:p95<500ms; solver:p99.9<250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	if objs[0].Stage != "e2e" || objs[0].Target != 0.95 || objs[0].Threshold != 500*time.Millisecond {
		t.Errorf("objs[0] = %+v", objs[0])
	}
	if d := objs[1].Target - 0.999; objs[1].Stage != "solver" || d < -1e-9 || d > 1e-9 || objs[1].Threshold != 250*time.Millisecond {
		t.Errorf("objs[1] = %+v", objs[1])
	}
	if got := objs[0].String(); got != "e2e:p95<500ms" {
		t.Errorf("String() = %q", got)
	}
	if objs, err := ParseObjectives(" ; "); err != nil || len(objs) != 0 {
		t.Errorf("blank spec: objs=%v err=%v, want none/nil", objs, err)
	}
	for _, bad := range []string{"e2e", "e2e:95<1s", "e2e:p0<1s", "e2e:p100<1s", "e2e:p95<nope", "e2e:p95<-1s", ":p95<1s"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted, want error", bad)
		}
	}
}

// sloUnderClock builds an SLO on a fake clock with second slots.
func sloUnderClock(clk *fakeClock, objs []Objective, onTrip func(Trip)) *SLO {
	return NewSLO(SLOConfig{
		Objectives:  objs,
		SlotDur:     time.Second,
		ShortWindow: 10 * time.Second,
		FastWindow:  30 * time.Second,
		SlowWindow:  2 * time.Minute,
		Cooldown:    time.Minute,
		OnTrip:      onTrip,
		Clock:       clk.Now,
	})
}

func TestSLOBurnRates(t *testing.T) {
	clk := newFakeClock()
	objs := []Objective{{Stage: "e2e", Target: 0.9, Threshold: 10 * time.Millisecond}}
	s := sloUnderClock(clk, objs, nil)

	// All good: burn 0.
	for i := 0; i < 50; i++ {
		s.Observe("e2e", time.Millisecond)
	}
	rep := s.Report()
	if got := rep.Objectives[0].FastBurn; got != 0 {
		t.Errorf("all-good fast burn = %v, want 0", got)
	}

	// Half bad: bad fraction 0.5 over a 0.1 budget = burn ~5.
	for i := 0; i < 50; i++ {
		s.Observe("e2e", time.Second)
	}
	rep = s.Report()
	fast := rep.Objectives[0].FastBurn
	if fast < 4 || fast > 6 {
		t.Errorf("half-bad fast burn = %v, want ~5", fast)
	}
	if rep.Objectives[0].Breached {
		t.Error("burn ~5 marked breached at default threshold 14.4")
	}
	// Budget accounting since boot: 50 bad of 100 total, allowance 10.
	if used := rep.Objectives[0].BudgetUsed; used < 4.9 || used > 5.1 {
		t.Errorf("budget used = %v, want ~5.0", used)
	}
}

func TestSLOTripAndCooldown(t *testing.T) {
	clk := newFakeClock()
	var trips []Trip
	objs := []Objective{{Stage: "e2e", Target: 0.99, Threshold: time.Millisecond}}
	s := sloUnderClock(clk, objs, func(tr Trip) { trips = append(trips, tr) })

	// Everything bad: burn = 1/0.01 = 100 on both windows.
	for i := 0; i < 40; i++ {
		s.Observe("e2e", time.Second)
	}
	fired := s.Check()
	if len(fired) != 1 || len(trips) != 1 {
		t.Fatalf("first check fired %d trips (callback %d), want 1", len(fired), len(trips))
	}
	if trips[0].FastBurn < 14.4 || trips[0].SlowBurn < 14.4 {
		t.Errorf("trip burns = %+v, want both >= threshold", trips[0])
	}

	// Within the cooldown the same breach stays silent.
	clk.Advance(10 * time.Second)
	if fired := s.Check(); len(fired) != 0 {
		t.Fatalf("check inside cooldown fired %d trips, want 0", len(fired))
	}
	// Past the cooldown (still breaching: observations are inside the
	// slow window) it fires again.
	clk.Advance(55 * time.Second)
	s.Observe("e2e", time.Second) // keep the fast window breaching too
	if fired := s.Check(); len(fired) != 1 {
		t.Fatalf("check past cooldown fired %d trips, want 1", len(fired))
	}
}

func TestSLONoTrafficNoTrip(t *testing.T) {
	clk := newFakeClock()
	objs := []Objective{{Stage: "e2e", Target: 0.99, Threshold: time.Millisecond}}
	s := sloUnderClock(clk, objs, func(Trip) { t.Error("trip fired with no traffic") })
	if fired := s.Check(); len(fired) != 0 {
		t.Fatalf("idle check fired %d trips", len(fired))
	}
}

func TestSLOObserveTrace(t *testing.T) {
	clk := newFakeClock()
	s := sloUnderClock(clk, nil, nil)

	tr := NewTrace("ask")
	tr.RecordSpan("solver", 0, 20*time.Millisecond)
	tr.RecordSpan("viz", 20*time.Millisecond, 5*time.Millisecond)
	tr.Finish()
	s.ObserveTrace(tr)
	s.ObserveTrace(nil) // nil-safe fast path

	rep := s.Report()
	stages := map[string]bool{}
	for _, st := range rep.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{StageE2E, "solver", "viz"} {
		if !stages[want] {
			t.Errorf("report missing stage %q (have %v)", want, rep.Stages)
		}
	}
}

func TestSLOHandlerJSONAndText(t *testing.T) {
	clk := newFakeClock()
	objs := []Objective{{Stage: "e2e", Target: 0.95, Threshold: 100 * time.Millisecond}}
	s := sloUnderClock(clk, objs, nil)
	for i := 0; i < 10; i++ {
		s.Observe("e2e", 5*time.Millisecond)
	}

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("JSON payload: %v", err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Total != 10 {
		t.Errorf("payload objectives = %+v", rep.Objectives)
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo?format=text", nil))
	txt := rr.Body.String()
	if !strings.Contains(txt, "e2e:p95<100ms") || !strings.Contains(txt, "slo report") {
		t.Errorf("text payload missing expected content:\n%s", txt)
	}
}
