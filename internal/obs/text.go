package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders one trace human-readably: a header line, then one
// line per span with start offset, duration, and attributes.
func WriteText(w io.Writer, tr *Trace) {
	if tr == nil {
		return
	}
	id := tr.ID
	if id == "" {
		id = "-"
	}
	fmt.Fprintf(w, "trace %s id=%s total=%v\n", tr.Name, id, tr.Duration().Round(time.Microsecond))
	for _, sp := range tr.Spans() {
		fmt.Fprintf(w, "  %10v  %-12s %10v", sp.Offset.Round(time.Microsecond), sp.Stage, sp.Dur.Round(time.Microsecond))
		if as := attrString(sp.Attrs); as != "" {
			fmt.Fprintf(w, "  %s", as)
		}
		fmt.Fprintln(w)
	}
}

// StageStat aggregates one stage's spans across traces.
type StageStat struct {
	Stage string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean is Total/Count (zero with no spans).
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// StageSummary aggregates span durations by stage across the traces,
// sorted by total time descending — the per-stage breakdown table that
// attributes a blended latency number to pipeline stages.
func StageSummary(traces []*Trace) []StageStat {
	byStage := map[string]*StageStat{}
	var order []string
	for _, tr := range traces {
		for _, sp := range tr.Spans() {
			st, ok := byStage[sp.Stage]
			if !ok {
				st = &StageStat{Stage: sp.Stage, Min: sp.Dur}
				byStage[sp.Stage] = st
				order = append(order, sp.Stage)
			}
			st.Count++
			st.Total += sp.Dur
			if sp.Dur < st.Min {
				st.Min = sp.Dur
			}
			if sp.Dur > st.Max {
				st.Max = sp.Dur
			}
		}
	}
	out := make([]StageStat, 0, len(order))
	for _, stage := range order {
		out = append(out, *byStage[stage])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// WriteStageTable prints a StageSummary as an aligned text table.
func WriteStageTable(w io.Writer, stats []StageStat) {
	fmt.Fprintf(w, "%-12s %7s %12s %12s %12s %12s\n", "stage", "count", "total", "mean", "min", "max")
	for _, st := range stats {
		fmt.Fprintf(w, "%-12s %7d %12v %12v %12v %12v\n",
			st.Stage, st.Count,
			st.Total.Round(time.Microsecond), st.Mean().Round(time.Microsecond),
			st.Min.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
}
