package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWriteChromeGolden pins the exact trace_event JSON for a fixed
// trace: the format is consumed by external tools (chrome://tracing,
// Perfetto), so accidental shape changes must fail loudly.
func TestWriteChromeGolden(t *testing.T) {
	tr := NewTrace("ask")
	tr.ID = "r-1"
	tr.Begin = time.Unix(100, 0)
	tr.RecordSpan("speech", 0, 500*time.Microsecond, Bool("simulated", false))
	tr.RecordSpan("solver", 500*time.Microsecond, 2*time.Millisecond,
		Int("bb_nodes", 12), Float("cost", 1.5))

	var sb strings.Builder
	if err := WriteChrome(&sb, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"dur":0,"args":{"name":"ask r-1"}},` +
		`{"name":"speech","ph":"X","pid":1,"tid":1,"ts":0,"dur":500,"args":{"simulated":false}},` +
		`{"name":"solver","ph":"X","pid":1,"tid":1,"ts":500,"dur":2000,"args":{"bb_nodes":12,"cost":1.5}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if sb.String() != want {
		t.Errorf("chrome export:\n got: %s\nwant: %s", sb.String(), want)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Error("export is not valid JSON")
	}
}

func TestWriteChromeMultiTraceAxis(t *testing.T) {
	// Two traces started 1ms apart share one time axis anchored at the
	// earliest Begin.
	early := NewTrace("a")
	early.Begin = time.Unix(50, 0)
	early.RecordSpan("nlq", 0, time.Millisecond)
	late := NewTrace("b")
	late.Begin = time.Unix(50, int64(time.Millisecond))
	late.RecordSpan("nlq", 0, time.Millisecond)

	var sb strings.Builder
	// Newest-first input (as Ring.Snapshot returns) must still anchor on
	// the chronologically earliest trace.
	if err := WriteChrome(&sb, []*Trace{late, early, nil}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int    `json:"tid"`
			TS   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	// Events: meta(late), span(late ts=1000), meta(early), span(early ts=0).
	if len(out.TraceEvents) != 4 {
		t.Fatalf("events = %d", len(out.TraceEvents))
	}
	if out.TraceEvents[1].TS != 1000 {
		t.Errorf("late trace ts = %d, want 1000", out.TraceEvents[1].TS)
	}
	if out.TraceEvents[3].TS != 0 {
		t.Errorf("early trace ts = %d, want 0", out.TraceEvents[3].TS)
	}
	if out.TraceEvents[1].TID == out.TraceEvents[3].TID {
		t.Error("traces share a tid")
	}
}
