package obs

import "sync"

// Ring is a fixed-capacity, concurrency-safe buffer of recent traces.
// Once full, each Add evicts the oldest trace. A nil *Ring is a valid
// no-op receiver (tracing disabled).
type Ring struct {
	mu  sync.Mutex
	buf []*Trace
	pos int // next write position
	n   int // traces stored
}

// NewRing builds a ring holding up to capacity traces; capacity <= 0
// returns nil, the disabled ring.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add records a finished trace, evicting the oldest when full.
func (r *Ring) Add(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.pos] = tr
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len is the number of traces currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap is the ring's capacity (0 when disabled).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Snapshot returns the held traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.pos-i+len(r.buf))%len(r.buf)])
	}
	return out
}
