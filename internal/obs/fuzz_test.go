package obs

import (
	"math"
	"testing"
)

// FuzzParseObjectives checks that arbitrary SLO specs never panic the
// parser and that every accepted objective survives a render/reparse
// round trip: Objective.String() must produce a spec ParseObjectives
// accepts, and the reparsed objective must match the original (exact
// stage and threshold; target within float-rendering noise).
func FuzzParseObjectives(f *testing.F) {
	f.Add("e2e:p95<500ms")
	f.Add("e2e:p95<500ms;solver:p99<250ms")
	f.Add("sojourn-interactive:p99.9<1.5s")
	f.Add("  e2e : p50<1ms  ")
	f.Add(";;")
	f.Add("e2e:p0<1s")
	f.Add("e2e:p100<1s")
	f.Add("bad")
	f.Fuzz(func(t *testing.T, spec string) {
		objs, err := ParseObjectives(spec)
		if err != nil {
			if objs != nil {
				t.Fatalf("ParseObjectives(%q) returned both objectives and %v", spec, err)
			}
			return
		}
		for _, o := range objs {
			if o.Target <= 0 || o.Target >= 1 {
				t.Fatalf("ParseObjectives(%q) accepted target %g outside (0,1)", spec, o.Target)
			}
			if o.Threshold <= 0 {
				t.Fatalf("ParseObjectives(%q) accepted threshold %v", spec, o.Threshold)
			}
			rendered := o.String()
			back, err := ParseObjectives(rendered)
			if err != nil {
				t.Fatalf("rendered objective %q does not reparse: %v", rendered, err)
			}
			if len(back) != 1 {
				t.Fatalf("rendered objective %q reparsed into %d objectives", rendered, len(back))
			}
			if back[0].Stage != o.Stage || back[0].Threshold != o.Threshold {
				t.Fatalf("round trip changed %q into %q", o, back[0])
			}
			if math.Abs(back[0].Target-o.Target) > 1e-9 {
				t.Fatalf("round trip drifted target %g to %g (spec %q)", o.Target, back[0].Target, rendered)
			}
		}
	})
}
