package obs

import (
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets; every Histogram
// additionally keeps a +Inf overflow bucket at index NumBuckets.
const NumBuckets = 19

// bucketBounds are latency bucket upper bounds: 100µs doubling up to
// ~26s, which spans a cache hit (~1µs, first bucket) through an ILP
// solve that exhausted a generous budget. 19 fixed buckets keep
// Observe a single atomic add with no allocation.
var bucketBounds = func() [NumBuckets]time.Duration {
	var b [NumBuckets]time.Duration
	d := 100 * time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// BucketBound returns the upper bound of finite bucket i.
func BucketBound(i int) time.Duration { return bucketBounds[i] }

// Buckets returns the finite bucket upper bounds.
func Buckets() [NumBuckets]time.Duration { return bucketBounds }

// Exemplar ties one observation to the trace that produced it, so a
// slow histogram bucket on /metrics links straight to the offending
// trace in /debug/traces (OpenMetrics exemplar syntax).
type Exemplar struct {
	TraceID string
	Value   float64 // seconds
	Unix    float64 // observation time, unix seconds
}

// Histogram accumulates durations into fixed log-spaced buckets and
// reports approximate quantiles. The zero value is ready to use; all
// methods are safe for concurrent use and Observe never allocates.
type Histogram struct {
	counts    [NumBuckets + 1]atomic.Uint64 // last bucket = +Inf
	sum       atomic.Int64                  // nanoseconds
	count     atomic.Uint64
	exemplars [NumBuckets + 1]atomic.Pointer[Exemplar]
}

// bucketIndex returns the bucket for one observation.
func bucketIndex(d time.Duration) int {
	i := 0
	for ; i < NumBuckets; i++ {
		if d <= bucketBounds[i] {
			break
		}
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.observe(d, "") }

// ObserveExemplar records one duration and, when traceID is non-empty,
// remembers it as the bucket's latest exemplar. Last-writer-wins per
// bucket: exemplars are a debugging breadcrumb, not a sample survey.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	h.observe(d, traceID)
}

func (h *Histogram) observe(d time.Duration, traceID string) {
	if d < 0 {
		d = 0
	}
	i := bucketIndex(d)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{
			TraceID: traceID,
			Value:   d.Seconds(),
			Unix:    float64(time.Now().UnixMilli()) / 1000,
		})
	}
}

// ExemplarAt returns bucket i's latest exemplar, or nil.
func (h *Histogram) ExemplarAt(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count is the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean is the average observed duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile estimates the q-quantile (0 < q < 1) by locating the bucket
// containing the rank and interpolating linearly within it, exactly as
// Prometheus's histogram_quantile does. The first bucket interpolates
// from 0 and the overflow bucket is assumed to span one more doubling,
// so estimates are never clamped to a bucket bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, _, total := h.Snapshot()
	return quantileOf(counts, total, q)
}

// quantileOf interpolates the q-quantile from a bucket-count snapshot.
// Shared by the cumulative Histogram and merged window snapshots.
func quantileOf(counts [NumBuckets + 1]uint64, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range counts {
		c := counts[i]
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			var lo, hi time.Duration
			switch {
			case i == 0:
				lo, hi = 0, bucketBounds[0]
			case i < NumBuckets:
				lo, hi = bucketBounds[i-1], bucketBounds[i]
			default: // +Inf bucket
				lo, hi = bucketBounds[NumBuckets-1], 2*bucketBounds[NumBuckets-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return 2 * bucketBounds[NumBuckets-1]
}

// fracUnder estimates the fraction of observations at or below
// threshold from a bucket-count snapshot, interpolating linearly inside
// the straddling bucket. An empty snapshot counts as fully under: with
// no traffic there is nothing over the threshold.
func fracUnder(counts [NumBuckets + 1]uint64, total uint64, threshold time.Duration) float64 {
	if total == 0 {
		return 1
	}
	var under float64
	for i := range counts {
		c := counts[i]
		if c == 0 {
			continue
		}
		var lo, hi time.Duration
		switch {
		case i == 0:
			lo, hi = 0, bucketBounds[0]
		case i < NumBuckets:
			lo, hi = bucketBounds[i-1], bucketBounds[i]
		default:
			lo, hi = bucketBounds[NumBuckets-1], 2*bucketBounds[NumBuckets-1]
		}
		switch {
		case hi <= threshold:
			under += float64(c)
		case lo >= threshold:
			// entirely over
		default:
			under += float64(c) * float64(threshold-lo) / float64(hi-lo)
		}
	}
	if f := under / float64(total); f < 1 {
		return f
	}
	return 1
}

// Snapshot copies the bucket counts for rendering or merging.
func (h *Histogram) Snapshot() (counts [NumBuckets + 1]uint64, sum int64, count uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load(), h.count.Load()
}

// Reset zeroes the histogram for reuse as a rotating window slot.
// Observations racing a Reset may leave the slot with a transiently
// inconsistent sum/count (an error of at most the racing observations);
// window consumers tolerate that by construction.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
}
