package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// spanJSON is the /debug/traces wire form of one span.
type spanJSON struct {
	Stage    string         `json:"stage"`
	OffsetUS int64          `json:"offset_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// traceJSON is the /debug/traces wire form of one trace.
type traceJSON struct {
	Name       string     `json:"name"`
	ID         string     `json:"id,omitempty"`
	Begin      time.Time  `json:"begin"`
	DurationUS int64      `json:"duration_us"`
	Spans      []spanJSON `json:"spans"`
}

// Handler serves the ring's recent traces. Query parameters:
//
//	format=json    structured JSON (default)
//	format=text    human-readable listing
//	format=chrome  Chrome trace_event export (load in chrome://tracing)
//	n=K            only the K most recent traces
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := r.Snapshot()
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		switch req.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Disposition", `attachment; filename="muve-trace.json"`)
			if err := WriteChrome(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tr := range traces {
				WriteText(w, tr)
			}
		default:
			out := make([]traceJSON, 0, len(traces))
			for _, tr := range traces {
				tj := traceJSON{
					Name:       tr.Name,
					ID:         tr.ID,
					Begin:      tr.Begin,
					DurationUS: tr.Duration().Microseconds(),
					Spans:      []spanJSON{},
				}
				for _, sp := range tr.Spans() {
					sj := spanJSON{
						Stage:    sp.Stage,
						OffsetUS: sp.Offset.Microseconds(),
						DurUS:    sp.Dur.Microseconds(),
					}
					if len(sp.Attrs) > 0 {
						sj.Attrs = make(map[string]any, len(sp.Attrs))
						for _, a := range sp.Attrs {
							sj.Attrs[a.Key] = a.Value()
						}
					}
					tj.Spans = append(tj.Spans, sj)
				}
				out = append(out, tj)
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := json.NewEncoder(w).Encode(out); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
}
