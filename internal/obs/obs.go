// Package obs is MUVE's zero-dependency, allocation-light tracing
// layer. A Trace carries an ordered list of Spans — one per pipeline
// stage (speech, phonetic, nlq, solver, progressive, viz) — each with a
// start offset, duration, and typed attributes such as branch-and-bound
// nodes expanded or candidates scanned. Traces travel through
// context.Context; instrumented code calls StartSpan(ctx, stage) and
// pays a single pointer check when no trace is attached, so un-traced
// calls are effectively free.
//
// Finished traces are collected in a concurrency-safe Ring of recent
// traces, exposed over HTTP by Handler (JSON, human-readable text, and
// Chrome trace_event export for flame-graph viewing in about:tracing /
// Perfetto).
//
// The package deliberately depends on nothing but the standard library
// so every layer of the pipeline — including the solver internals — can
// import it without cycles.
package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// AttrKind discriminates the value stored in an Attr.
type AttrKind uint8

const (
	// KindInt marks an integer attribute.
	KindInt AttrKind = iota
	// KindFloat marks a float attribute.
	KindFloat
	// KindString marks a string attribute.
	KindString
	// KindBool marks a boolean attribute (stored in Int as 0/1).
	KindBool
)

// Attr is one typed key/value annotation on a span. Exactly one of the
// value fields is meaningful, selected by Kind; keeping the variants
// unboxed avoids an interface allocation per attribute.
type Attr struct {
	Key  string
	Kind AttrKind
	Int  int64
	Flt  float64
	Str  string
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Flt: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's value as an interface (for JSON export).
func (a Attr) Value() any {
	switch a.Kind {
	case KindFloat:
		return a.Flt
	case KindString:
		return a.Str
	case KindBool:
		return a.Int != 0
	default:
		return a.Int
	}
}

// String renders key=value.
func (a Attr) String() string {
	switch a.Kind {
	case KindFloat:
		return a.Key + "=" + strconv.FormatFloat(a.Flt, 'g', 4, 64)
	case KindString:
		return a.Key + "=" + a.Str
	case KindBool:
		return a.Key + "=" + strconv.FormatBool(a.Int != 0)
	default:
		return a.Key + "=" + strconv.FormatInt(a.Int, 10)
	}
}

// Span is one timed stage of a trace. Offset and Dur are relative to the
// trace's Begin time; Dur is zero until End is called (or forever, for
// instant marks). Mutate spans only through their methods — they share
// the owning trace's lock.
type Span struct {
	Stage  string
	Offset time.Duration
	Dur    time.Duration
	Attrs  []Attr

	open bool
	t    *Trace
}

// Trace is the record of one request through the pipeline: an ordered,
// append-only list of spans. All methods are safe for concurrent use; a
// nil *Trace is a valid no-op receiver, which is the disabled-tracing
// fast path.
type Trace struct {
	// Name labels the trace (e.g. the HTTP path or "ask").
	Name string
	// ID ties the trace to the serving layer's per-request ID; set it
	// before handing the trace to concurrent recorders.
	ID string
	// Begin is the trace's wall-clock start, set by NewTrace. Exported so
	// tests can pin it for deterministic export.
	Begin time.Time

	mu    sync.Mutex
	spans []*Span
	dur   time.Duration
	done  bool
}

// NewTrace starts a trace now.
func NewTrace(name string) *Trace {
	return &Trace{Name: name, Begin: time.Now()}
}

// ctxKey is the private context key for the attached trace.
type ctxKey struct{}

// WithTrace attaches tr to the context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the attached trace, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// StartSpan opens a span on the context's trace. Without a trace it
// returns nil, and every Span method no-ops on a nil receiver — this is
// the un-traced fast path.
func StartSpan(ctx context.Context, stage string) *Span {
	return FromContext(ctx).StartSpan(stage)
}

// StartSpan opens a span on the trace (nil-safe).
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sp := &Span{Stage: stage, Offset: time.Since(t.Begin), open: true, t: t}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Mark records an instant (zero-duration) span, e.g. an engine event
// like a deadline-miss fallback.
func (t *Trace) Mark(stage string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, &Span{Stage: stage, Offset: time.Since(t.Begin), Attrs: attrs, t: t})
	t.mu.Unlock()
}

// RecordSpan appends a fully specified span. Tests and external
// recorders use it; live instrumentation should prefer StartSpan/End.
func (t *Trace) RecordSpan(stage string, offset, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, &Span{Stage: stage, Offset: offset, Dur: dur, Attrs: attrs, t: t})
	t.mu.Unlock()
}

// Finish seals the trace, recording its total duration. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.dur = time.Since(t.Begin)
	}
	t.mu.Unlock()
}

// Duration is the sealed total duration (zero before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Len is the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a snapshot copy of the spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, sp := range t.spans {
		out[i] = *sp
	}
	return out
}

// LastStage names the stage to blame for a budget blow-up: the most
// recently started span that is still open or carries an "error"
// attribute; failing that, the most recently started span. Empty when
// the trace has no spans.
func (t *Trace) LastStage() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	blame := ""
	for i := len(t.spans) - 1; i >= 0; i-- {
		sp := t.spans[i]
		if blame == "" {
			blame = sp.Stage
		}
		if sp.open {
			return sp.Stage
		}
		for _, a := range sp.Attrs {
			if a.Key == "error" {
				return sp.Stage
			}
		}
	}
	return blame
}

// End closes the span, fixing its duration. Safe on nil and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.open {
		s.open = false
		s.Dur = time.Since(s.t.Begin) - s.Offset
	}
	s.t.mu.Unlock()
}

// setAttr appends one attribute under the trace lock.
func (s *Span) setAttr(a Attr) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	s.Attrs = append(s.Attrs, a)
	s.t.mu.Unlock()
	return s
}

// SetInt records an integer attribute. Returns the span for chaining;
// nil-safe like all span methods.
func (s *Span) SetInt(key string, v int64) *Span { return s.setAttr(Int(key, v)) }

// SetFloat records a float attribute.
func (s *Span) SetFloat(key string, v float64) *Span { return s.setAttr(Float(key, v)) }

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) *Span { return s.setAttr(Str(key, v)) }

// SetBool records a boolean attribute.
func (s *Span) SetBool(key string, v bool) *Span { return s.setAttr(Bool(key, v)) }

// SetErr records err as an "error" attribute (no-op on nil err), which
// also makes the span the trace's LastStage blame target.
func (s *Span) SetErr(err error) *Span {
	if s == nil || err == nil {
		return s
	}
	return s.setAttr(Str("error", err.Error()))
}

// attrString renders a span's attributes as "{k=v k=v}" or "".
func attrString(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	out := "{"
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		out += a.String()
	}
	return out + "}"
}

// String renders "stage dur {attrs}" for logs.
func (s Span) String() string {
	out := fmt.Sprintf("%s %v", s.Stage, s.Dur)
	if as := attrString(s.Attrs); as != "" {
		out += " " + as
	}
	return out
}
