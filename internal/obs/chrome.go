package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a timestamp and duration in microseconds;
// "M" metadata events name the synthetic threads. Loading the exported
// file into chrome://tracing or ui.perfetto.dev shows each trace as one
// thread with nested stage slices — a flame graph of the pipeline.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object container variant of the format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the traces as a Chrome trace_event JSON document.
// Each trace becomes one thread (tid = position, newest-first input
// order preserved); timestamps are microseconds relative to the earliest
// trace's Begin so concurrent requests line up on a shared axis.
func WriteChrome(w io.Writer, traces []*Trace) error {
	var epoch time.Time
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if epoch.IsZero() || tr.Begin.Before(epoch) {
			epoch = tr.Begin
		}
	}
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tid := 0
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		tid++
		label := tr.Name
		if tr.ID != "" {
			label += " " + tr.ID
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": label},
		})
		base := tr.Begin.Sub(epoch)
		for _, sp := range tr.Spans() {
			ev := chromeEvent{
				Name:  sp.Stage,
				Phase: "X",
				PID:   1,
				TID:   tid,
				TS:    (base + sp.Offset).Microseconds(),
				Dur:   sp.Dur.Microseconds(),
			}
			if len(sp.Attrs) > 0 {
				ev.Args = make(map[string]any, len(sp.Attrs))
				for _, a := range sp.Attrs {
					ev.Args[a.Key] = a.Value()
				}
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
