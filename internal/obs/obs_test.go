package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceFastPath(t *testing.T) {
	// No trace in the context: StartSpan returns nil and every method
	// no-ops without panicking.
	sp := StartSpan(context.Background(), "speech")
	if sp != nil {
		t.Fatalf("StartSpan without trace = %v, want nil", sp)
	}
	sp.SetInt("n", 1).SetFloat("f", 2).SetStr("s", "x").SetBool("b", true).SetErr(nil)
	sp.End()
	var tr *Trace
	tr.Mark("x")
	tr.Finish()
	if tr.Len() != 0 || tr.LastStage() != "" || tr.Duration() != 0 {
		t.Error("nil trace methods not inert")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext = %v", got)
	}
}

func TestSpanRecordingAndContext(t *testing.T) {
	tr := NewTrace("ask")
	tr.ID = "r-1"
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace not round-tripped through context")
	}
	sp := StartSpan(ctx, "solver")
	sp.SetInt("bb_nodes", 42).SetBool("optimal", true)
	sp.End()
	tr.Mark("fallback", Str("blamed_stage", "solver"))
	tr.Finish()
	tr.Finish() // idempotent

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Stage != "solver" || spans[1].Stage != "fallback" {
		t.Errorf("stages = %q, %q", spans[0].Stage, spans[1].Stage)
	}
	if len(spans[0].Attrs) != 2 || spans[0].Attrs[0].String() != "bb_nodes=42" {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
	if spans[0].Dur < 0 {
		t.Errorf("dur = %v", spans[0].Dur)
	}
	if tr.Duration() <= 0 {
		t.Errorf("trace duration = %v", tr.Duration())
	}
	if s := spans[0].String(); !strings.Contains(s, "solver") || !strings.Contains(s, "optimal=true") {
		t.Errorf("span string = %q", s)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	// Hammer one trace from many goroutines; run under -race via the
	// Makefile ci target. Every span and attribute must survive.
	tr := NewTrace("concurrent")
	ctx := WithTrace(context.Background(), tr)
	const goroutines, perG = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := StartSpan(ctx, "stage")
				sp.SetInt("g", int64(g)).SetInt("i", int64(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	tr.Finish()
	spans := tr.Spans()
	if len(spans) != goroutines*perG {
		t.Fatalf("spans = %d, want %d", len(spans), goroutines*perG)
	}
	for _, sp := range spans {
		if len(sp.Attrs) != 2 {
			t.Fatalf("span attrs = %v", sp.Attrs)
		}
	}
}

func TestLastStageBlame(t *testing.T) {
	tr := NewTrace("ask")
	if tr.LastStage() != "" {
		t.Errorf("empty trace blame = %q", tr.LastStage())
	}
	a := tr.StartSpan("nlq")
	a.End()
	if got := tr.LastStage(); got != "nlq" {
		t.Errorf("blame = %q, want nlq", got)
	}
	// An open span wins over a later closed one.
	open := tr.StartSpan("solver")
	done := tr.StartSpan("viz")
	done.End()
	if got := tr.LastStage(); got != "solver" {
		t.Errorf("blame = %q, want open solver", got)
	}
	open.End()
	// With all spans closed, an error attribute wins.
	tr.StartSpan("progressive").SetErr(context.DeadlineExceeded).End()
	tr.StartSpan("late").End()
	if got := tr.LastStage(); got != "progressive" {
		t.Errorf("blame = %q, want errored progressive", got)
	}
}

func TestAttrKindsAndStrings(t *testing.T) {
	cases := []struct {
		a Attr
		s string
		v any
	}{
		{Int("n", 7), "n=7", int64(7)},
		{Float("f", 0.5), "f=0.5", 0.5},
		{Str("s", "x"), "s=x", "x"},
		{Bool("b", false), "b=false", false},
	}
	for _, c := range cases {
		if c.a.String() != c.s {
			t.Errorf("String() = %q, want %q", c.a.String(), c.s)
		}
		if c.a.Value() != c.v {
			t.Errorf("Value() = %v, want %v", c.a.Value(), c.v)
		}
	}
}

func TestStageSummary(t *testing.T) {
	tr := NewTrace("a")
	tr.RecordSpan("nlq", 0, 2*time.Millisecond)
	tr.RecordSpan("solver", 2*time.Millisecond, 10*time.Millisecond)
	tr2 := NewTrace("b")
	tr2.RecordSpan("solver", 0, 4*time.Millisecond)
	stats := StageSummary([]*Trace{tr, tr2})
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Sorted by total descending: solver (14ms) before nlq (2ms).
	if stats[0].Stage != "solver" || stats[0].Count != 2 || stats[0].Total != 14*time.Millisecond {
		t.Errorf("solver stat = %+v", stats[0])
	}
	if stats[0].Min != 4*time.Millisecond || stats[0].Max != 10*time.Millisecond || stats[0].Mean() != 7*time.Millisecond {
		t.Errorf("solver min/max/mean = %v/%v/%v", stats[0].Min, stats[0].Max, stats[0].Mean())
	}
	if stats[1].Stage != "nlq" || stats[1].Count != 1 {
		t.Errorf("nlq stat = %+v", stats[1])
	}
	var sb strings.Builder
	WriteStageTable(&sb, stats)
	if !strings.Contains(sb.String(), "solver") || !strings.Contains(sb.String(), "mean") {
		t.Errorf("table = %q", sb.String())
	}
}

func TestWriteText(t *testing.T) {
	tr := NewTrace("ask")
	tr.ID = "r-9"
	tr.RecordSpan("speech", 0, time.Millisecond, Bool("simulated", true))
	tr.Finish()
	var sb strings.Builder
	WriteText(&sb, tr)
	out := sb.String()
	for _, want := range []string{"trace ask id=r-9", "speech", "simulated=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	WriteText(&sb, nil) // must not panic
}
