// Go runtime gauges via runtime/metrics: heap and GC pressure,
// goroutine counts, scheduler latency and GC pause distributions,
// exported in Prometheus text form as the muve_go_* family. These are
// the denominators of every latency investigation — a p99 spike reads
// very differently next to a 50ms GC pause than next to a flat one.
package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// goMetric maps one runtime/metrics sample to an exported name.
type goMetric struct {
	name   string // runtime/metrics key
	export string // muve_go_* name
	help   string
}

var goGauges = []goMetric{
	{"/memory/classes/heap/objects:bytes", "muve_go_heap_objects_bytes", "live heap object bytes"},
	{"/memory/classes/total:bytes", "muve_go_memory_total_bytes", "all memory mapped by the Go runtime"},
	{"/sched/goroutines:goroutines", "muve_go_goroutines", "live goroutines"},
	{"/gc/cycles/total:gc-cycles", "muve_go_gc_cycles_total", "completed GC cycles"},
	{"/gc/heap/allocs:bytes", "muve_go_heap_allocs_bytes_total", "cumulative bytes allocated"},
}

var goHists = []goMetric{
	{"/sched/pauses/total/gc:seconds", "muve_go_gc_pause_seconds", "stop-the-world GC pause distribution"},
	{"/sched/latencies:seconds", "muve_go_sched_latency_seconds", "time goroutines spend runnable before running"},
}

// GoStats reads the Go runtime's own metrics and renders them as
// muve_go_* gauges and quantile series. All methods are safe for
// concurrent use.
type GoStats struct {
	mu      sync.Mutex
	samples []metrics.Sample
}

// NewGoStats builds a reader over the fixed metric set.
func NewGoStats() *GoStats {
	g := &GoStats{}
	for _, m := range goGauges {
		g.samples = append(g.samples, metrics.Sample{Name: m.name})
	}
	for _, m := range goHists {
		g.samples = append(g.samples, metrics.Sample{Name: m.name})
	}
	return g
}

// histQuantile interpolates q from a runtime/metrics histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i], Buckets[i+1] bound count i; the edges can be
			// ±Inf, in which case fall back to the finite neighbor.
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if lo < 0 || lo != lo { // -Inf or NaN
				lo = 0
			}
			if hi > 1e18 || hi != hi { // +Inf or NaN
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return 0
}

// WriteProm renders the current runtime metrics in Prometheus text
// form. Metrics the running toolchain doesn't export are skipped.
func (g *GoStats) WriteProm(w io.Writer) {
	g.mu.Lock()
	metrics.Read(g.samples)
	vals := make(map[string]metrics.Value, len(g.samples))
	for _, s := range g.samples {
		vals[s.Name] = s.Value
	}
	g.mu.Unlock()

	for _, m := range goGauges {
		v, ok := vals[m.name]
		if !ok {
			continue
		}
		var f float64
		switch v.Kind() {
		case metrics.KindUint64:
			f = float64(v.Uint64())
		case metrics.KindFloat64:
			f = v.Float64()
		default:
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", m.export, m.help, m.export, m.export, f)
	}
	for _, m := range goHists {
		v, ok := vals[m.name]
		if !ok || v.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := v.Float64Histogram()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.export, m.help, m.export)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", m.export, fmt.Sprintf("%g", q), histQuantile(h, q))
		}
	}
}

// Snapshot returns the scalar gauges as a name→value map (for incident
// bundles and tests).
func (g *GoStats) Snapshot() map[string]float64 {
	g.mu.Lock()
	metrics.Read(g.samples)
	out := make(map[string]float64)
	for _, s := range g.samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	g.mu.Unlock()
	return out
}

// Run refreshes the samples every interval until ctx is done, keeping
// the most recent read warm for Snapshot callers on the incident path.
func (g *GoStats) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 10 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.Snapshot()
		}
	}
}

// Names lists the runtime metric keys the reader follows, sorted (for
// documentation endpoints and tests).
func (g *GoStats) Names() []string {
	var names []string
	for _, m := range goGauges {
		names = append(names, m.name)
	}
	for _, m := range goHists {
		names = append(names, m.name)
	}
	sort.Strings(names)
	return names
}

// Handler serves WriteProm over HTTP.
func (g *GoStats) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WriteProm(w)
	})
}
