// SLO objectives and multi-window multi-burn-rate evaluation.
//
// An Objective declares "quantile of stage latency under threshold for
// target fraction of requests" — e.g. `e2e:p95<500ms` targeting 0.95.
// The engine keeps a Windowed latency series per observed stage (plus
// the synthetic "e2e" stage for whole-request latency), computes the
// bad-event fraction over a fast and a slow sliding window, and divides
// by the error budget (1-target) to get burn rates: burn 1.0 spends the
// budget exactly at the allowed pace, 14.4 exhausts a 30-day budget in
// ~2 days (the classic page threshold). An objective trips only when
// BOTH windows burn over the threshold — the fast window makes paging
// quick, the slow window stops a brief blip from paging at all.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Objective is one latency SLO: Target fraction of Stage requests at or
// under Threshold. Stage "e2e" means whole-request latency.
type Objective struct {
	Stage     string
	Target    float64 // good-event ratio, e.g. 0.95
	Threshold time.Duration
}

// String renders the spec form, e.g. "solver:p99<250ms".
func (o Objective) String() string {
	p := strconv.FormatFloat(o.Target*100, 'f', -1, 64)
	return fmt.Sprintf("%s:p%s<%s", o.Stage, p, o.Threshold)
}

// StageE2E is the synthetic stage name for end-to-end request latency.
const StageE2E = "e2e"

// ParseObjectives parses a semicolon-separated SLO spec:
//
//	stage:pQQ<DUR[;stage:pQQ<DUR...]
//
// e.g. "e2e:p95<500ms;solver:p99<250ms". QQ is the target percentile
// (fractions like p99.9 allowed); DUR is a Go duration. An empty spec
// yields no objectives.
func ParseObjectives(spec string) ([]Objective, error) {
	var objs []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stage, rest, ok := strings.Cut(part, ":")
		if !ok || stage == "" {
			return nil, fmt.Errorf("obs: objective %q: want stage:pNN<duration", part)
		}
		pct, durStr, ok := strings.Cut(rest, "<")
		if !ok || !strings.HasPrefix(pct, "p") {
			return nil, fmt.Errorf("obs: objective %q: want stage:pNN<duration", part)
		}
		p, err := strconv.ParseFloat(pct[1:], 64)
		// The p/100 guard rejects subnormal percentiles whose target
		// would underflow to 0 (an objective no request can ever miss).
		if err != nil || p <= 0 || p >= 100 || p/100 <= 0 {
			return nil, fmt.Errorf("obs: objective %q: percentile %q out of (0,100)", part, pct)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("obs: objective %q: bad threshold %q", part, durStr)
		}
		objs = append(objs, Objective{Stage: strings.TrimSpace(stage), Target: p / 100, Threshold: d})
	}
	return objs, nil
}

// SLOConfig assembles an SLO engine.
type SLOConfig struct {
	// Objectives to evaluate; stages without one still get windowed
	// latency series on /debug/slo.
	Objectives []Objective
	// SlotDur is the windowed-series slot granularity (default 10s).
	SlotDur time.Duration
	// ShortWindow/FastWindow/SlowWindow are the reporting and burn-rate
	// windows (defaults 1m, 5m, 1h). FastWindow and SlowWindow drive
	// trip decisions; ShortWindow feeds live quantile reporting and the
	// adaptive Retry-After estimate.
	ShortWindow time.Duration
	FastWindow  time.Duration
	SlowWindow  time.Duration
	// BurnThreshold trips an objective when both windows burn at or
	// above it (default 14.4 — budget gone in ~2 days at 30-day pace).
	BurnThreshold float64
	// Cooldown rate-limits OnTrip per objective (default 2m).
	Cooldown time.Duration
	// OnTrip, when non-nil, fires on each newly tripped objective —
	// e.g. a flight-recorder trigger.
	OnTrip func(Trip)
	// Clock is the injectable time source (default time.Now).
	Clock func() time.Time
}

// Trip records one burn-rate threshold crossing.
type Trip struct {
	At        time.Time `json:"at"`
	Objective string    `json:"objective"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
}

// objState pairs an objective with its since-boot budget accounting.
type objState struct {
	obj      Objective
	good     uint64 // guarded by SLO.mu
	total    uint64
	lastTrip time.Time
}

// SLO evaluates latency objectives over sliding windows. All methods
// are safe for concurrent use.
type SLO struct {
	cfg SLOConfig

	mu     sync.Mutex
	series map[string]*Windowed
	objs   []*objState
}

// NewSLO builds the engine and its per-objective series.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.SlotDur <= 0 {
		cfg.SlotDur = 10 * time.Second
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = time.Minute
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 14.4
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &SLO{cfg: cfg, series: make(map[string]*Windowed)}
	for _, o := range cfg.Objectives {
		s.objs = append(s.objs, &objState{obj: o})
		s.seriesFor(o.Stage) // eager, so the report lists it even idle
	}
	return s
}

// Objectives returns the configured objectives.
func (s *SLO) Objectives() []Objective {
	out := make([]Objective, len(s.objs))
	for i, st := range s.objs {
		out[i] = st.obj
	}
	return out
}

// Attach registers an externally owned windowed series under a stage
// name, so series fed outside the trace path — e.g. admission queue
// sojourn per lane — appear in the SLO report and can carry objectives
// like any traced stage. A stage that already has a series keeps it
// (first writer wins); a nil series is ignored.
func (s *SLO) Attach(stage string, w *Windowed) {
	if w == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.series[stage] == nil {
		s.series[stage] = w
	}
}

// seriesFor returns (lazily creating) the stage's windowed series. The
// ring covers the slow window plus one partial slot.
func (s *SLO) seriesFor(stage string) *Windowed {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.series[stage]
	if w == nil {
		slots := int(s.cfg.SlowWindow/s.cfg.SlotDur) + 1
		w = NewWindowed(s.cfg.SlotDur, slots)
		w.SetClock(s.cfg.Clock)
		s.series[stage] = w
	}
	return w
}

// Observe records one stage latency and updates budget accounting for
// any objective on that stage.
func (s *SLO) Observe(stage string, d time.Duration) {
	s.seriesFor(stage).Observe(d)
	s.mu.Lock()
	for _, st := range s.objs {
		if st.obj.Stage != stage {
			continue
		}
		st.total++
		if d <= st.obj.Threshold {
			st.good++
		}
	}
	s.mu.Unlock()
}

// ObserveTrace folds a finished trace into the SLO series: its total
// duration as stage "e2e", each positive-duration span under its stage.
// Nil traces no-op, matching the tracing fast path.
func (s *SLO) ObserveTrace(tr *Trace) {
	if tr == nil {
		return
	}
	if d := tr.Duration(); d > 0 {
		s.Observe(StageE2E, d)
	}
	for _, sp := range tr.Spans() {
		if sp.Dur <= 0 {
			continue
		}
		s.Observe(sp.Stage, sp.Dur)
	}
}

// burn converts a windowed bad-event fraction to a burn rate: the
// multiple of the sustainable error-budget spend rate. 0 on an empty
// window — no traffic burns nothing.
func burn(st WindowStat, o Objective) float64 {
	budget := 1 - o.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return (1 - st.FracUnder(o.Threshold)) / budget
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Objective  string  `json:"objective"`
	Stage      string  `json:"stage"`
	TargetPct  float64 `json:"target_pct"`
	ThresholdS float64 `json:"threshold_seconds"`
	// FastBurn/SlowBurn are the burn rates over the two alerting
	// windows; Breached is both at or over the threshold.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Breached bool    `json:"breached"`
	// Good/Total and BudgetUsed account the error budget since boot:
	// BudgetUsed 1.0 means the whole allowance is spent.
	Good       uint64  `json:"good"`
	Total      uint64  `json:"total"`
	BudgetUsed float64 `json:"budget_used"`
}

// WindowStatus is one stage's latency summary over one window.
type WindowStatus struct {
	Window     string  `json:"window"`
	Count      uint64  `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// StageStatus is one stage's windowed latency summaries.
type StageStatus struct {
	Stage   string         `json:"stage"`
	Windows []WindowStatus `json:"windows"`
}

// Report is the full /debug/slo payload.
type Report struct {
	At            time.Time         `json:"at"`
	BurnThreshold float64           `json:"burn_threshold"`
	Objectives    []ObjectiveStatus `json:"objectives"`
	Stages        []StageStatus     `json:"stages"`
}

// evaluate computes one objective's status from its series.
func (s *SLO) evaluate(st *objState) ObjectiveStatus {
	w := s.seriesFor(st.obj.Stage)
	fast := burn(w.Window(s.cfg.FastWindow), st.obj)
	slow := burn(w.Window(s.cfg.SlowWindow), st.obj)
	s.mu.Lock()
	good, total := st.good, st.total
	s.mu.Unlock()
	used := 0.0
	if allowed := (1 - st.obj.Target) * float64(total); allowed > 0 {
		used = float64(total-good) / allowed
	}
	return ObjectiveStatus{
		Objective:  st.obj.String(),
		Stage:      st.obj.Stage,
		TargetPct:  st.obj.Target * 100,
		ThresholdS: st.obj.Threshold.Seconds(),
		FastBurn:   fast,
		SlowBurn:   slow,
		Breached:   fast >= s.cfg.BurnThreshold && slow >= s.cfg.BurnThreshold,
		Good:       good,
		Total:      total,
		BudgetUsed: used,
	}
}

// Check evaluates every objective and fires OnTrip (subject to the
// per-objective cooldown) for each breach. It returns the trips fired.
func (s *SLO) Check() []Trip {
	now := s.cfg.Clock()
	var trips []Trip
	for _, st := range s.objs {
		os := s.evaluate(st)
		if !os.Breached {
			continue
		}
		s.mu.Lock()
		due := st.lastTrip.IsZero() || now.Sub(st.lastTrip) >= s.cfg.Cooldown
		if due {
			st.lastTrip = now
		}
		s.mu.Unlock()
		if !due {
			continue
		}
		t := Trip{At: now, Objective: st.obj.String(), FastBurn: os.FastBurn, SlowBurn: os.SlowBurn}
		trips = append(trips, t)
		if s.cfg.OnTrip != nil {
			s.cfg.OnTrip(t)
		}
	}
	return trips
}

// Run calls Check every interval until ctx is done.
func (s *SLO) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 10 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Check()
		}
	}
}

// Report snapshots every objective and every observed stage's windowed
// latency summaries (short, fast and slow windows).
func (s *SLO) Report() Report {
	rep := Report{At: s.cfg.Clock(), BurnThreshold: s.cfg.BurnThreshold}
	for _, st := range s.objs {
		rep.Objectives = append(rep.Objectives, s.evaluate(st))
	}
	s.mu.Lock()
	stages := make([]string, 0, len(s.series))
	for k := range s.series {
		stages = append(stages, k)
	}
	s.mu.Unlock()
	sort.Strings(stages)
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for _, stage := range stages {
		w := s.seriesFor(stage)
		ss := StageStatus{Stage: stage}
		for _, win := range []time.Duration{s.cfg.ShortWindow, s.cfg.FastWindow, s.cfg.SlowWindow} {
			st := w.Window(win)
			ss.Windows = append(ss.Windows, WindowStatus{
				Window:     win.String(),
				Count:      st.Count,
				RatePerSec: st.Rate(),
				P50Ms:      ms(st.Quantile(0.50)),
				P90Ms:      ms(st.Quantile(0.90)),
				P95Ms:      ms(st.Quantile(0.95)),
				P99Ms:      ms(st.Quantile(0.99)),
			})
		}
		rep.Stages = append(rep.Stages, ss)
	}
	return rep
}

// WriteText renders the report as an operator-readable table.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "slo report @ %s (burn threshold %.1f)\n", r.At.Format(time.RFC3339), r.BurnThreshold)
	if len(r.Objectives) > 0 {
		fmt.Fprintf(w, "\n%-24s %10s %10s %10s %10s %8s\n", "objective", "fast burn", "slow burn", "budget", "good/total", "state")
		for _, o := range r.Objectives {
			state := "ok"
			if o.Breached {
				state = "BREACH"
			}
			fmt.Fprintf(w, "%-24s %10.2f %10.2f %9.1f%% %4d/%-5d %8s\n",
				o.Objective, o.FastBurn, o.SlowBurn, o.BudgetUsed*100, o.Good, o.Total, state)
		}
	}
	fmt.Fprintf(w, "\n%-12s %-6s %8s %9s %9s %9s %9s\n", "stage", "window", "count", "rate/s", "p50 ms", "p95 ms", "p99 ms")
	for _, st := range r.Stages {
		for _, win := range st.Windows {
			fmt.Fprintf(w, "%-12s %-6s %8d %9.2f %9.3f %9.3f %9.3f\n",
				st.Stage, win.Window, win.Count, win.RatePerSec, win.P50Ms, win.P95Ms, win.P99Ms)
		}
	}
}

// Handler serves the live report at /debug/slo: JSON by default,
// ?format=text for the table.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := s.Report()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}
