package obs

import (
	"context"
	"runtime/pprof"
	"sync"
	"testing"
)

func TestDoAttachesStageLabel(t *testing.T) {
	if got := Label(context.Background(), "stage"); got != "" {
		t.Fatalf("unlabeled ctx stage = %q, want empty", got)
	}
	Do(context.Background(), "solver", func(ctx context.Context) {
		if got := Label(ctx, "stage"); got != "solver" {
			t.Errorf("stage label = %q, want solver", got)
		}
		// Nested stages override: the innermost wins, as in the pipeline
		// (e.g. progressive wrapping its solver call).
		Do(ctx, "viz", func(ctx context.Context) {
			if got := Label(ctx, "stage"); got != "viz" {
				t.Errorf("nested stage label = %q, want viz", got)
			}
		})
		if got := Label(ctx, "stage"); got != "solver" {
			t.Errorf("stage label after nesting = %q, want solver", got)
		}
	})
}

// TestLabelsReachPoolWorkers pins the re-application idiom the solver
// pools use: a worker goroutine spawned from an unlabeled pool
// goroutine regains the request's labels by re-entering pprof.Do with
// the stored context and an empty label set.
func TestLabelsReachPoolWorkers(t *testing.T) {
	var labeled context.Context
	Do(context.Background(), "solver", func(ctx context.Context) { labeled = ctx })

	results := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	// Plain spawn from an unlabeled goroutine: reading the goroutine's
	// own label set via a fresh context shows nothing...
	go func() {
		defer wg.Done()
		ctx := context.Background()
		pprof.Do(ctx, pprof.Labels(), func(ctx context.Context) {
			results <- Label(ctx, "stage")
		})
	}()
	// ...while re-applying the stored request context carries "solver"
	// onto the worker.
	go func() {
		defer wg.Done()
		pprof.Do(labeled, pprof.Labels(), func(ctx context.Context) {
			results <- Label(ctx, "stage")
		})
	}()
	wg.Wait()
	close(results)
	var got []string
	for s := range results {
		got = append(got, s)
	}
	want := map[string]bool{"": false, "solver": false}
	for _, s := range got {
		if _, ok := want[s]; !ok {
			t.Fatalf("unexpected label %q (all: %v)", s, got)
		}
		want[s] = true
	}
	for s, seen := range want {
		if !seen {
			t.Errorf("label %q never observed (all: %v)", s, got)
		}
	}
}
