package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecorder(clk *fakeClock, dir string) *Recorder {
	ring := NewRing(4)
	tr := NewTrace("ask")
	tr.RecordSpan("solver", 0, 3*time.Millisecond)
	tr.Finish()
	ring.Add(tr)
	return NewRecorder(RecorderConfig{
		Capacity:        2,
		Dir:             dir,
		ProfileDuration: 20 * time.Millisecond,
		Cooldown:        time.Minute,
		Metrics:         func() []byte { return []byte("muve_test_metric 1\n") },
		State:           func() any { return map[string]string{"state": "tripped"} },
		Traces:          ring,
		Clock:           clk.Now,
	})
}

func TestRecorderCaptureBundle(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	r := testRecorder(clk, dir)

	if !r.Trigger("slo-trip:test") {
		t.Fatal("first trigger suppressed")
	}
	r.Wait()

	incs := r.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if inc.ID != "inc-1" || inc.Reason != "slo-trip:test" {
		t.Errorf("incident meta = %+v", inc)
	}
	// The CPU part may be forfeited if another profiler holds the slot
	// (inc.Err says so); every other part must land.
	if len(inc.CPU) == 0 && inc.Err == "" {
		t.Error("no CPU profile and no explanation in Err")
	}
	if len(inc.Heap) == 0 {
		t.Error("heap profile missing")
	}
	if string(inc.Metrics) != "muve_test_metric 1\n" {
		t.Errorf("metrics part = %q", inc.Metrics)
	}
	var st map[string]string
	if err := json.Unmarshal(inc.State, &st); err != nil || st["state"] != "tripped" {
		t.Errorf("state part = %q (%v)", inc.State, err)
	}
	if len(inc.Traces) == 0 {
		t.Error("trace snapshot missing")
	}

	// Spill: the bundle directory holds the written parts.
	if inc.Spilled == "" {
		t.Fatalf("bundle not spilled (err %q)", inc.Err)
	}
	for _, name := range []string{"meta.json", "heap.pprof", "metrics.prom", "traces.txt", "slo.json"} {
		if _, err := os.Stat(filepath.Join(inc.Spilled, name)); err != nil {
			t.Errorf("spilled part %s: %v", name, err)
		}
	}
}

func TestRecorderCooldownAndRingBound(t *testing.T) {
	clk := newFakeClock()
	r := testRecorder(clk, "")

	if !r.Trigger("first") {
		t.Fatal("first trigger suppressed")
	}
	r.Wait()
	// Inside the cooldown: suppressed, counted on the newest incident.
	clk.Advance(10 * time.Second)
	if r.Trigger("storm-1") || r.Trigger("storm-2") {
		t.Fatal("trigger inside cooldown captured")
	}
	if incs := r.Incidents(); len(incs) != 1 || incs[0].Repeats != 2 {
		t.Fatalf("after storm: %d incidents, repeats %d; want 1 incident with 2 repeats",
			len(incs), incs[0].Repeats)
	}

	// Past the cooldown, captures resume; capacity 2 evicts the oldest.
	for i := 0; i < 3; i++ {
		clk.Advance(2 * time.Minute)
		if !r.Trigger("later") {
			t.Fatalf("trigger %d past cooldown suppressed", i)
		}
		r.Wait()
	}
	incs := r.Incidents()
	if len(incs) != 2 {
		t.Fatalf("ring holds %d incidents, want capacity 2", len(incs))
	}
	if incs[0].ID != "inc-4" || incs[1].ID != "inc-3" {
		t.Errorf("ring = [%s %s], want newest-first [inc-4 inc-3]", incs[0].ID, incs[1].ID)
	}
}

func TestRecorderHandler(t *testing.T) {
	clk := newFakeClock()
	r := testRecorder(clk, "")
	r.Trigger("handler-test")
	r.Wait()
	h := r.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents", nil))
	var list []Incident
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list) != 1 {
		t.Fatalf("list = %q (%v)", rr.Body.String(), err)
	}
	if list[0].ID != "inc-1" {
		t.Errorf("list[0].ID = %s", list[0].ID)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id=inc-1&part=metrics", nil))
	if rr.Code != 200 || rr.Body.String() != "muve_test_metric 1\n" {
		t.Errorf("metrics part: code %d body %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id=inc-1&part=slo", nil))
	if rr.Code != 200 || !json.Valid(rr.Body.Bytes()) {
		t.Errorf("slo part: code %d body %q", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id=inc-9", nil))
	if rr.Code != 404 {
		t.Errorf("missing incident: code %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/incidents?id=inc-1&part=bogus", nil))
	if rr.Code != 400 {
		t.Errorf("bogus part: code %d, want 400", rr.Code)
	}
}
