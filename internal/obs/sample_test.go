package obs

import (
	"testing"
	"time"
)

// finished returns a sealed trace whose duration is roughly d.
func finished(d time.Duration) *Trace {
	tr := NewTrace("q")
	tr.Begin = time.Now().Add(-d)
	tr.Finish()
	return tr
}

func TestSamplerRateIsDeterministic(t *testing.T) {
	s := NewSampler(0.25, 0)
	kept := 0
	for i := 0; i < 100; i++ {
		if s.Keep(finished(time.Millisecond)) {
			kept++
		}
	}
	if kept != 25 {
		t.Errorf("kept %d of 100 at rate 0.25, want exactly 25", kept)
	}
}

func TestSamplerAlwaysKeepsSlow(t *testing.T) {
	s := NewSampler(0, 100*time.Millisecond)
	if s.Keep(finished(time.Millisecond)) {
		t.Error("rate-0 sampler kept a fast trace")
	}
	if !s.Keep(finished(time.Second)) {
		t.Error("sampler dropped a trace over the slow threshold")
	}
	if s.Keep(nil) {
		t.Error("sampler kept a nil trace")
	}
}

func TestSamplerKeepAll(t *testing.T) {
	if NewSampler(1, 0) != nil {
		t.Error("rate >= 1 should build the nil keep-all sampler")
	}
	var s *Sampler
	if !s.Keep(finished(time.Microsecond)) {
		t.Error("nil sampler dropped a trace")
	}
}

func TestSamplerClampsNegativeRate(t *testing.T) {
	s := NewSampler(-0.5, 0)
	for i := 0; i < 10; i++ {
		if s.Keep(finished(time.Millisecond)) {
			t.Fatal("negative-rate sampler kept a trace")
		}
	}
}
