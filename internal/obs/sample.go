package obs

import (
	"sync"
	"time"
)

// Sampler decides which finished traces are retained in the debug
// ring. Under load, keeping every trace makes the ring churn so fast
// that a trace is evicted before anyone can look at it; head sampling
// keeps a deterministic fraction instead, while an optional slow
// threshold always retains the traces worth debugging. The decision
// gates only ring retention: callers still create every trace and fold
// it into the latency metrics, so muve_stage_seconds sees all requests
// regardless of the sampling rate.
//
// A nil *Sampler is the keep-all sampler, mirroring the package's
// nil-receiver convention for disabled features.
type Sampler struct {
	rate float64
	slow time.Duration

	mu  sync.Mutex
	acc float64
}

// NewSampler builds a sampler keeping the given fraction of traces
// (clamped to [0, 1]); slow, when positive, additionally keeps every
// trace at least that slow regardless of rate. rate >= 1 keeps
// everything and returns nil, the no-op sampler.
func NewSampler(rate float64, slow time.Duration) *Sampler {
	if rate >= 1 {
		return nil
	}
	if rate < 0 {
		rate = 0
	}
	return &Sampler{rate: rate, slow: slow}
}

// Keep reports whether a finished trace should be retained. Traces at
// or over the slow threshold are always kept; the rest are admitted by
// a fractional accumulator — exactly every 1/rate-th eligible trace,
// no RNG — so identical request sequences sample identically. Safe for
// concurrent use; nil keeps everything.
func (s *Sampler) Keep(tr *Trace) bool {
	if s == nil {
		return true
	}
	if tr == nil {
		return false
	}
	if s.slow > 0 && tr.Duration() >= s.slow {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acc += s.rate
	if s.acc >= 1 {
		s.acc--
		return true
	}
	return false
}
