package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingDisabled(t *testing.T) {
	r := NewRing(0)
	if r != nil {
		t.Fatalf("NewRing(0) = %v, want nil", r)
	}
	r.Add(NewTrace("x")) // nil ring must be inert
	if r.Len() != 0 || r.Cap() != 0 || r.Snapshot() != nil {
		t.Error("nil ring not inert")
	}
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 {
		t.Fatalf("cap = %d", r.Cap())
	}
	var added []*Trace
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i))
		added = append(added, tr)
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	// Oldest (t0, t1) evicted; snapshot is newest first: t4, t3, t2.
	snap := r.Snapshot()
	want := []string{"t4", "t3", "t2"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %d traces", len(snap))
	}
	for i, tr := range snap {
		if tr.Name != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, tr.Name, want[i])
		}
	}
	// Identity, not just names: the survivors are the exact traces added.
	if snap[0] != added[4] || snap[2] != added[2] {
		t.Error("snapshot returned different trace pointers")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(4)
	a, b := NewTrace("a"), NewTrace("b")
	r.Add(a)
	r.Add(b)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0] != b || snap[1] != a {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRingConcurrentAdd(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(NewTrace("t"))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Errorf("len = %d, want full ring", r.Len())
	}
}
