// Incident flight recorder: when an SLO burn rate trips or a breaker
// opens, capture a bounded diagnostic bundle — a short CPU profile, a
// heap profile, the trace-ring snapshot, a metrics dump, and the SLO
// state — while the incident is still happening, and keep the last few
// bundles in a ring served at /debug/incidents. The point is to answer
// "which code was on-CPU when the budget burned" without anyone having
// been logged in to run pprof at 3am.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// RecorderConfig assembles a flight Recorder.
type RecorderConfig struct {
	// Capacity bounds the incident ring (default 8).
	Capacity int
	// Dir, when non-empty, additionally spills each bundle's parts as
	// files under Dir (created if missing).
	Dir string
	// ProfileDuration is how long the incident CPU profile runs
	// (default 1s). Keep it short: the recorder holds the process's one
	// CPU-profiling slot for its duration.
	ProfileDuration time.Duration
	// Cooldown rate-limits captures (default 30s): triggers landing
	// inside it are counted on the previous incident, not captured.
	Cooldown time.Duration
	// Metrics, when non-nil, supplies the metrics dump for the bundle
	// (e.g. the Prometheus text exposition).
	Metrics func() []byte
	// State, when non-nil, supplies JSON-marshalable SLO state.
	State func() any
	// Traces, when non-nil, is the ring whose snapshot lands in the
	// bundle as a text listing.
	Traces *Ring
	// Clock is the injectable time source (default time.Now).
	Clock func() time.Time
}

// Incident is one captured bundle. The profile parts are retrieved by
// /debug/incidents?id=N&part=cpu|heap|metrics|traces|state.
type Incident struct {
	ID       string    `json:"id"`
	At       time.Time `json:"at"`
	Reason   string    `json:"reason"`
	Repeats  int       `json:"repeats,omitempty"` // triggers suppressed into this incident
	Err      string    `json:"err,omitempty"`     // capture problems, e.g. CPU profiler busy
	Spilled  string    `json:"spilled,omitempty"` // directory the parts were written to
	CPUBytes int       `json:"cpu_bytes"`
	Heap     []byte    `json:"-"`
	CPU      []byte    `json:"-"`
	Metrics  []byte    `json:"-"`
	Traces   []byte    `json:"-"`
	State    []byte    `json:"-"`
}

// Recorder captures and retains incident bundles. All methods are safe
// for concurrent use; captures run asynchronously off the trigger path.
type Recorder struct {
	cfg RecorderConfig

	mu       sync.Mutex
	ring     []*Incident // newest last
	seq      int
	last     time.Time // last capture start, for the cooldown
	inflight sync.WaitGroup
}

// NewRecorder builds a recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.ProfileDuration <= 0 {
		cfg.ProfileDuration = time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Recorder{cfg: cfg}
}

// Trigger requests an incident capture. It returns immediately: true
// when a capture started, false when the cooldown suppressed it (the
// newest incident's Repeats count is bumped instead, so trigger storms
// stay visible without re-profiling).
func (r *Recorder) Trigger(reason string) bool {
	now := r.cfg.Clock()
	r.mu.Lock()
	if !r.last.IsZero() && now.Sub(r.last) < r.cfg.Cooldown {
		if n := len(r.ring); n > 0 {
			r.ring[n-1].Repeats++
		}
		r.mu.Unlock()
		return false
	}
	r.last = now
	r.seq++
	inc := &Incident{ID: fmt.Sprintf("inc-%d", r.seq), At: now, Reason: reason}
	r.mu.Unlock()

	r.inflight.Add(1)
	go func() {
		defer r.inflight.Done()
		r.capture(inc)
		r.mu.Lock()
		r.ring = append(r.ring, inc)
		if len(r.ring) > r.cfg.Capacity {
			r.ring = r.ring[len(r.ring)-r.cfg.Capacity:]
		}
		r.mu.Unlock()
	}()
	return true
}

// Wait blocks until all in-flight captures have landed in the ring —
// for tests and batch reports, not the serving path.
func (r *Recorder) Wait() { r.inflight.Wait() }

// capture fills the bundle. Each part degrades independently: a busy
// CPU profiler (muveserver's -pprof flag, say) forfeits just the CPU
// part and notes why.
func (r *Recorder) capture(inc *Incident) {
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		inc.Err = "cpu profile: " + err.Error()
	} else {
		time.Sleep(r.cfg.ProfileDuration)
		pprof.StopCPUProfile()
		inc.CPU = cpu.Bytes()
	}
	inc.CPUBytes = len(inc.CPU)

	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if err := p.WriteTo(&heap, 0); err == nil {
			inc.Heap = heap.Bytes()
		}
	}
	if r.cfg.Metrics != nil {
		inc.Metrics = r.cfg.Metrics()
	}
	if r.cfg.State != nil {
		if b, err := json.MarshalIndent(r.cfg.State(), "", "  "); err == nil {
			inc.State = b
		}
	}
	if r.cfg.Traces != nil {
		var tb bytes.Buffer
		for _, tr := range r.cfg.Traces.Snapshot() {
			WriteText(&tb, tr)
		}
		inc.Traces = tb.Bytes()
	}
	if r.cfg.Dir != "" {
		r.spill(inc)
	}
}

// spill writes the bundle's parts as files under cfg.Dir.
func (r *Recorder) spill(inc *Incident) {
	dir := filepath.Join(r.cfg.Dir, inc.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		inc.Err = appendErr(inc.Err, "spill: "+err.Error())
		return
	}
	meta, _ := json.MarshalIndent(inc, "", "  ")
	parts := []struct {
		name string
		data []byte
	}{
		{"meta.json", meta},
		{"cpu.pprof", inc.CPU},
		{"heap.pprof", inc.Heap},
		{"metrics.prom", inc.Metrics},
		{"traces.txt", inc.Traces},
		{"slo.json", inc.State},
	}
	for _, p := range parts {
		if len(p.data) == 0 {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, p.name), p.data, 0o644); err != nil {
			inc.Err = appendErr(inc.Err, "spill: "+err.Error())
			return
		}
	}
	inc.Spilled = dir
}

func appendErr(prev, next string) string {
	if prev == "" {
		return next
	}
	return prev + "; " + next
}

// Incidents returns the retained bundles, newest first.
func (r *Recorder) Incidents() []*Incident {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Incident, len(r.ring))
	for i, inc := range r.ring {
		out[len(r.ring)-1-i] = inc
	}
	return out
}

// Get returns the bundle with the given ID, or nil.
func (r *Recorder) Get(id string) *Incident {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, inc := range r.ring {
		if inc.ID == id {
			return inc
		}
	}
	return nil
}

// Handler serves the incident ring at /debug/incidents:
//
//	(no params)        JSON list of incident metadata, newest first
//	?id=inc-N          one incident's metadata
//	?id=inc-N&part=P   raw part bytes; P is cpu, heap, metrics,
//	                   traces or slo
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			incs := r.Incidents()
			sort.SliceStable(incs, func(i, j int) bool { return incs[i].At.After(incs[j].At) })
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(incs)
			return
		}
		inc := r.Get(id)
		if inc == nil {
			http.Error(w, "no such incident", http.StatusNotFound)
			return
		}
		switch part := req.URL.Query().Get("part"); part {
		case "":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(inc)
		case "cpu", "heap":
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%q", inc.ID+"-"+part+".pprof"))
			if part == "cpu" {
				w.Write(inc.CPU)
			} else {
				w.Write(inc.Heap)
			}
		case "metrics":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(inc.Metrics)
		case "traces":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(inc.Traces)
		case "slo":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(inc.State)
		default:
			http.Error(w, "unknown part (want cpu|heap|metrics|traces|slo)", http.StatusBadRequest)
		}
	})
}
