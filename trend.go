package muve

import (
	"fmt"
	"math"

	"muve/internal/sqldb"
	"muve/internal/viz"
)

// TrendAnswer is the result of a trend (line-plot) query — the Section 11
// future-work extension: "Queries with multiple result rows and up to two
// numerical result columns (e.g., time series) could be plotted as lines."
type TrendAnswer struct {
	Query  sqldb.Query
	Series viz.Series
	// FirstPaint is the instant approximate series answered from a
	// grouped aggregate sketch before the exact scan ran — the trend
	// analogue of the multiplot's sketch-first paint. Nil when sketching
	// is disabled or the query has no sketchable template; its values
	// equal a sampled execution at the DB's sketch rate.
	FirstPaint *viz.Series
	// Scan records sketch build/hit activity for the first paint; the
	// exact fill itself runs through the direct executor (a trend is a
	// single candidate, which the shared planner routes there too).
	Scan sqldb.ScanStats
}

// ANSI renders the trend as a terminal line chart.
func (a *TrendAnswer) ANSI() string { return viz.RenderSeriesANSI(a.Series, 0, 0) }

// SVG renders the trend as an SVG polyline chart.
func (a *TrendAnswer) SVG() string { return viz.RenderSeriesSVG(a.Series, 0, 0) }

// Trend executes a single-aggregate query grouped by one column and
// returns its result as an ordered series. Numeric group keys order
// numerically (time series); string keys order lexicographically with
// their labels preserved. When the DB keeps aggregate sketches and the
// query matches a grouped sketch template, the answer also carries an
// instant approximate FirstPaint series computed without any table scan.
//
// Trends bypass multiplot planning: the paper notes its visualization
// method "would have to change fundamentally" for multi-row results, so
// this extension renders one interpretation rather than a multiplot of
// them.
func (s *System) Trend(q sqldb.Query) (*TrendAnswer, error) {
	if len(q.Aggs) != 1 {
		return nil, fmt.Errorf("muve: trend queries need exactly one aggregate, got %d", len(q.Aggs))
	}
	if len(q.GroupBy) != 1 {
		return nil, fmt.Errorf("muve: trend queries need exactly one GROUP BY column, got %d", len(q.GroupBy))
	}
	ans := &TrendAnswer{Query: q}
	if s.db.SketchRate() > 0 {
		if res, st, ok := s.db.SketchLookupResult(q); ok {
			first := seriesFromResult(q, res)
			ans.FirstPaint = &first
			ans.Scan.Add(st)
		}
	}
	res, err := s.db.Exec(q)
	if err != nil {
		return nil, err
	}
	ans.Series = seriesFromResult(q, res)
	return ans, nil
}

// seriesFromResult converts a grouped single-aggregate Result into an
// ordered series.
func seriesFromResult(q sqldb.Query, res sqldb.Result) viz.Series {
	ser := viz.Series{Title: q.Aggs[0].String() + " by " + q.GroupBy[0]}
	for i, row := range res.Rows {
		key, val := row[0], row[1]
		p := viz.SeriesPoint{Y: val.AsFloat()}
		if val.IsNull() {
			p.Y = math.NaN()
		}
		switch key.K {
		case sqldb.KindInt:
			p.X = float64(key.I)
		case sqldb.KindFloat:
			p.X = key.F
		default:
			p.X = float64(i) // lexicographic position (rows arrive sorted)
			p.Label = key.S
		}
		if !math.IsNaN(p.Y) {
			ser.Points = append(ser.Points, p)
		}
	}
	ser.Sort()
	return ser
}

// TrendText translates a transcript, keeps its most likely interpretation,
// and renders it as a trend grouped by the given column — the voice-driven
// variant of Trend.
func (s *System) TrendText(text, groupBy string) (*TrendAnswer, error) {
	transcript := text
	if s.channel != nil {
		transcript = s.channel.Transcribe(text)
	}
	q, err := s.pipe.Translator.Translate(transcript)
	if err != nil {
		return nil, err
	}
	q.GroupBy = []string{groupBy}
	// Drop any predicate on the grouping column: grouping subsumes it.
	var preds []sqldb.Predicate
	for _, p := range q.Preds {
		if p.Col != groupBy {
			preds = append(preds, p)
		}
	}
	q.Preds = preds
	return s.Trend(q)
}
