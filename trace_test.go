package muve

import (
	"context"
	"testing"
	"time"

	"muve/internal/obs"
)

// TestAskContextTraceStages drives one traced AskContext through the
// ILP-backed pipeline and asserts every stage recorded exactly one
// span, with the solver span carrying its internal search counters.
func TestAskContextTraceStages(t *testing.T) {
	db := demoDB(t)
	sys, err := New(db, "requests",
		WithSolver(SolverILP),
		WithILPTimeout(2*time.Second),
		WithMaxCandidates(8),
		WithWidth(600))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("ask")
	tr.ID = "test-1"
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := sys.AskContext(ctx, "how many noise complaints in brooklin"); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	byStage := map[string]int{}
	var solver obs.Span
	for _, sp := range tr.Spans() {
		byStage[sp.Stage]++
		if sp.Stage == "solver" {
			solver = sp
		}
	}
	for _, stage := range []string{"speech", "phonetic", "nlq", "solver", "progressive", "viz"} {
		if byStage[stage] != 1 {
			t.Errorf("stage %q recorded %d spans, want exactly 1 (all: %v)", stage, byStage[stage], byStage)
		}
	}

	// The ILP solver span must expose its internal search effort.
	attrs := map[string]any{}
	for _, a := range solver.Attrs {
		attrs[a.Key] = a.Value()
	}
	for _, key := range []string{"bb_nodes", "lp_solves", "simplex_iters", "incumbents"} {
		v, ok := attrs[key].(int64)
		if !ok || v < 1 {
			t.Errorf("solver attr %q = %v, want >= 1", key, attrs[key])
		}
	}
	if attrs["solver"] != "ILP" {
		t.Errorf("solver attr = %v, want ILP", attrs["solver"])
	}
}

// TestAskContextUntraced exercises the nil fast path: no trace in the
// context must still answer correctly.
func TestAskContextUntraced(t *testing.T) {
	db := demoDB(t)
	sys, err := New(db, "requests", WithWidth(1024))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.AskContext(context.Background(), "how many noise complaints in brooklin")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Multiplot.Rows) == 0 {
		t.Fatal("empty multiplot")
	}
}
